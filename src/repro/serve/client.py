"""Blocking stdlib client for the array service (``http.client`` only).

:class:`StoreClient` mirrors the server routes: ``ls`` / ``info`` /
``get`` / ``put`` / ``append`` / ``compact`` / ``chunk`` / ``stats``.
``get`` supports both transfer modes:

* ``decode="server"`` — the server decodes and ships ``.npy`` bytes.
* ``decode="client"`` — the server ships index records plus the needed
  still-compressed chunk payloads (``mode=chunks``); the client rebuilds
  a :class:`~repro.store.snapshot.StoreSnapshot` over the body and
  decodes locally through the exact store read path, so the result is
  bit-identical to a server-side decode by construction — and the server
  spends no decode CPU on the request.

Connections are keep-alive and reused; a request that trips over a
server-closed idle connection is retried once on a fresh connection
(only before any response bytes arrive, so it never doubles a mutation).
"""

from __future__ import annotations

import http.client
import io
import json
import socket
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlencode, urlsplit

import numpy as np

from repro.store.format import IndexRecord
from repro.store.region import format_region
from repro.store.snapshot import ReadReport, StoreSnapshot

__all__ = ["StoreClient", "ServeError"]


class ServeError(Exception):
    """Non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = int(status)
        self.message = str(message)


class StoreClient:
    """One connection to a ``repro serve`` endpoint.

    ``url`` is the server base, e.g. ``http://127.0.0.1:8787``.  Usable
    as a context manager; safe to share across sequential calls but not
    across threads (each load-generator thread opens its own).
    """

    def __init__(self, url: str, *, timeout: float = 60.0) -> None:
        split = urlsplit(url if "//" in url else f"http://{url}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"only http:// endpoints are supported, got {url!r}")
        if not split.hostname:
            raise ValueError(f"no host in server url {url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = float(timeout)
        self._conn: Optional[http.client.HTTPConnection] = None
        #: Header dict of the most recent response (lower-cased names).
        self.last_headers: Dict[str, str] = {}

    def __enter__(self) -> "StoreClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- plumbing --------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        query: Optional[Dict[str, str]] = None,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, bytes]:
        target = path + (f"?{urlencode(query)}" if query else "")
        for attempt in (0, 1):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(method, target, body=body, headers=headers or {})
                response = self._conn.getresponse()
                payload = response.read()
            except (
                http.client.BadStatusLine,
                http.client.CannotSendRequest,
                ConnectionError,
                BrokenPipeError,
                socket.timeout,
            ):
                # Stale keep-alive connection; retry once on a fresh one.
                self.close()
                if attempt:
                    raise
                continue
            self.last_headers = {
                name.lower(): value for name, value in response.getheaders()
            }
            if response.will_close:
                self.close()
            return response.status, payload
        raise AssertionError("unreachable")

    def _check(self, status: int, payload: bytes) -> bytes:
        if status >= 400:
            message = payload.decode("utf-8", "replace")
            try:
                message = json.loads(message)["error"]
            except (json.JSONDecodeError, KeyError, TypeError):
                pass
            raise ServeError(status, message)
        return payload

    def _json(self, status: int, payload: bytes) -> Dict:
        return json.loads(self._check(status, payload).decode("utf-8"))

    # -- routes ----------------------------------------------------------
    def healthz(self) -> bool:
        status, _ = self._request("GET", "/healthz")
        return status == 200

    def stats(self) -> Dict:
        return self._json(*self._request("GET", "/stats"))

    def metrics_text(self) -> str:
        """``GET /metrics`` — Prometheus exposition text (``repro top``)."""

        status, payload = self._request("GET", "/metrics")
        return self._check(status, payload).decode("utf-8")

    def debug_vars(self, window: Optional[float] = None) -> Dict:
        """``GET /debug/vars`` — the server's metrics-history series."""

        query = {"window": str(window)} if window is not None else None
        return self._json(*self._request("GET", "/debug/vars", query))

    def debug_requests(self) -> Dict:
        """``GET /debug/requests`` — captured slow requests by route."""

        return self._json(*self._request("GET", "/debug/requests"))

    def ls(self) -> List[str]:
        return self._json(*self._request("GET", "/ds"))["datasets"]

    def info(self, name: str) -> Dict:
        return self._json(*self._request("GET", f"/ds/{name}/info"))

    def get(
        self, name: str, region=None, *, decode: str = "server"
    ) -> np.ndarray:
        """Fetch a region (``decode="server"`` → npy, ``"client"`` → local)."""

        if decode not in ("server", "client"):
            raise ValueError(f"decode must be 'server' or 'client', got {decode!r}")
        query = {"region": format_region(region)}
        if decode == "client":
            query["mode"] = "chunks"
            payload = self._check(
                *self._request("GET", f"/ds/{name}", query=query)
            )
            values, _report = decode_chunks_body(payload, region)
            return values
        payload = self._check(*self._request("GET", f"/ds/{name}", query=query))
        return np.load(io.BytesIO(payload), allow_pickle=False)

    def put(
        self,
        name: str,
        array: np.ndarray,
        *,
        codec: str = "sz",
        error_bound: float = 1e-3,
        chunk: Optional[int] = None,
        halo: bool = False,
    ) -> Dict:
        query = {"codec": codec, "error_bound": repr(float(error_bound))}
        if chunk is not None:
            query["chunk"] = str(int(chunk))
        if halo:
            query["halo"] = "1"
        buffer = io.BytesIO()
        np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
        return self._json(
            *self._request("PUT", f"/ds/{name}", query=query, body=buffer.getvalue())
        )

    def append(self, name: str, array: np.ndarray) -> Dict:
        buffer = io.BytesIO()
        np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
        return self._json(
            *self._request("POST", f"/ds/{name}/append", body=buffer.getvalue())
        )

    def compact(self, name: str) -> Dict:
        return self._json(*self._request("POST", f"/ds/{name}/compact"))

    def chunk(
        self, name: str, linear: int, *, etag: Optional[str] = None
    ) -> Tuple[Optional[bytes], str]:
        """Fetch one raw chunk payload; ``(None, etag)`` on a 304 hit."""

        headers = {"If-None-Match": etag} if etag else {}
        status, payload = self._request(
            "GET", f"/ds/{name}/chunk/{int(linear)}", headers=headers
        )
        if status == 304:
            return None, self.last_headers.get("etag", etag or "")
        self._check(status, payload)
        return payload, self.last_headers.get("etag", "")


def decode_chunks_body(body: bytes, region=None) -> Tuple[np.ndarray, ReadReport]:
    """Decode a ``mode=chunks`` response body locally.

    Rebuilds a :class:`StoreSnapshot` whose data source is the body's
    payload section and whose index is the rebased records, then runs the
    ordinary snapshot read — one code path for server- and client-side
    decoding, which is what makes the two modes bit-identical.
    """

    if len(body) < 8:
        raise ValueError("chunks body too short for its header length")
    header_len = int.from_bytes(body[:8], "little")
    if len(body) < 8 + header_len:
        raise ValueError("chunks body shorter than its declared header")
    header = json.loads(body[8 : 8 + header_len].decode("utf-8"))
    if header.get("format") != "repro-serve-chunks" or header.get("version") != 1:
        raise ValueError(f"unsupported chunks payload: {header.get('format')!r}")
    payloads = body[8 + header_len :]
    index = [
        IndexRecord(
            offset=int(offset),
            length=int(length),
            codec=str(codec),
            checksum=int(checksum),
            flags=int(flags),
        )
        for offset, length, codec, checksum, flags in header["records"]
    ]
    snapshot = StoreSnapshot(header["meta"], index, data=payloads)
    return snapshot.read(region)
