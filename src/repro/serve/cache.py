"""Shared LRU hot-chunk cache for the serving path.

The store's own decode path already dedups within one read; across
requests every read would still decode the same popular chunks again.
:class:`HotChunkCache` holds *decoded* chunk values (plus their derived
entropy context, when one was collected) keyed by payload content hash
and every parameter the decode depends on — codec, extent, halo digest,
error bound / compressor options — so byte-identical chunks are shared
across datasets while configurations that decode differently never
alias.

Thread-safe: server reads run on a thread pool, so all bookkeeping is
done under one lock (the generalisation of
:class:`repro.core.pipeline.ExperimentCache`, which is single-threaded
by design).  Eviction is LRU by decoded byte size, not entry count —
chunk values dominate memory.  Cached arrays are handed out read-only;
requests slice them into their own output buffers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

__all__ = ["HotChunkCache"]


class HotChunkCache:
    """Content-hash-keyed LRU over decoded chunk values.

    ``max_nbytes`` bounds the sum of cached ``values.nbytes`` (contexts
    are small histograms and are not counted).  A ``get`` with
    ``want_context=True`` only hits when the cached entry carried a
    context — a values-only entry cannot serve a context-needing decode,
    and counting it as a hit would silently skip the context derivation.
    """

    def __init__(self, max_nbytes: int = 256 * 1024 * 1024) -> None:
        if max_nbytes <= 0:
            raise ValueError(f"max_nbytes must be positive, got {max_nbytes}")
        self.max_nbytes = int(max_nbytes)
        self._entries: "OrderedDict[Hashable, Tuple[np.ndarray, object]]" = (
            OrderedDict()
        )
        self._nbytes = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(
        self, key: Hashable, *, want_context: bool = False
    ) -> Optional[Tuple[np.ndarray, object]]:
        """Look up ``(values, context)``; None on miss.  Bumps LRU order."""

        with self._lock:
            entry = self._entries.get(key)
            if entry is None or (want_context and entry[1] is None):
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: Hashable, values: np.ndarray, context: object = None) -> None:
        """Insert (or upgrade) an entry, evicting LRU entries over budget.

        An existing entry is only replaced when the new one adds the
        context — otherwise the resident entry (already LRU-fresh) wins.
        Values larger than the whole budget are not cached.
        """

        values = np.asarray(values)
        if values.nbytes > self.max_nbytes:
            return
        frozen = values.view()
        frozen.setflags(write=False)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                if context is None or existing[1] is not None:
                    return
                self._nbytes -= existing[0].nbytes
                del self._entries[key]
            self._entries[key] = (frozen, context)
            self._nbytes += frozen.nbytes
            while self._nbytes > self.max_nbytes and self._entries:
                _, (old_values, _) = self._entries.popitem(last=False)
                self._nbytes -= old_values.nbytes
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._nbytes = 0

    def counters(self) -> Dict[str, int]:
        """Snapshot of hit/miss/eviction/occupancy counters."""

        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "nbytes": self._nbytes,
                "max_nbytes": self.max_nbytes,
            }
