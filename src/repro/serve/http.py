"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

Just enough of the protocol for the array service: request-line +
headers + Content-Length bodies in, status + headers + body out, with
keep-alive.  No chunked transfer encoding, no TLS, no compression — the
payloads are already compressed chunks.  Kept deliberately separate from
the routing/serving logic in :mod:`repro.serve.server` so the framing is
testable on its own and the handlers only see :class:`Request`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "render_response",
    "STATUS_PHRASES",
]

#: Hard cap on the request head (request line + headers).
MAX_HEAD_BYTES = 16 * 1024

STATUS_PHRASES = {
    200: "OK",
    204: "No Content",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A protocol-level or handler-level error with an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = str(message)


@dataclass
class Request:
    """One parsed request (headers lower-cased, query values flattened)."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int
) -> Optional[Request]:
    """Read one request off the stream; None on clean EOF between requests.

    Raises :class:`HttpError` on malformed framing, oversized heads
    (431) or bodies (413), and :class:`asyncio.IncompleteReadError` /
    :class:`ConnectionError` when the peer vanishes mid-request.
    """

    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise
    except asyncio.LimitOverrunError as exc:
        raise HttpError(431, "request head too large") from exc
    if len(head) > MAX_HEAD_BYTES:
        raise HttpError(431, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts

    split = urlsplit(target)
    query: Dict[str, str] = {
        key: values[-1]
        for key, values in parse_qs(split.query, keep_blank_values=True).items()
    }

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "bad Content-Length") from exc
        if length < 0:
            raise HttpError(400, "bad Content-Length")
        if length > max_body:
            raise HttpError(
                413, f"request body of {length} bytes exceeds limit {max_body}"
            )
        body = await reader.readexactly(length)
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    return Request(
        method=method.upper(),
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/octet-stream",
    extra_headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> Tuple[bytes, bytes]:
    """Serialize ``(head_bytes, body_bytes)`` for one response.

    Returned separately so the caller can write the head even when a
    body write fails mid-stream (and so 304s skip the body cleanly).
    """

    phrase = STATUS_PHRASES.get(status, "Unknown")
    headers = {
        "content-type": content_type,
        "content-length": str(len(body)),
        "connection": "keep-alive" if keep_alive else "close",
    }
    if status == 304:
        # 304 must not carry a body; the ETag travels in the headers.
        headers.pop("content-type")
        headers["content-length"] = "0"
        body = b""
    if extra_headers:
        headers.update({k.lower(): v for k, v in extra_headers.items()})
    head = f"HTTP/1.1 {status} {phrase}\r\n" + "".join(
        f"{name}: {value}\r\n" for name, value in headers.items()
    )
    return head.encode("latin-1") + b"\r\n", body
