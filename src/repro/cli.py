"""Command-line interface.

``python -m repro <command>`` drives the most common workflows without
writing any Python:

* ``compress``   — compress a field file (``.npy`` or SDRBench raw) with a
  named compressor and error bound; report CR / PSNR / max error.
* ``stats``      — report the correlation statistics of a field file
  (global variogram range, local statistics, entropy).
* ``experiment`` — run a named dataset sweep (``gaussian-single``,
  ``gaussian-multi``, ``miranda``) and write the records to CSV.
* ``figure``     — regenerate one of the paper's figures (3-7) and print
  the fitted-series table (optionally as Markdown).
* ``store``      — the chunked compressed array store: ``put`` a field
  file or registry dataset into a store directory (``--codec adaptive``
  selects the per-chunk codec by the sampling estimator), ``get`` a
  region back out (only intersecting chunks are decoded), ``append`` /
  ``compact`` for growth and reclamation, ``info`` / ``ls`` for
  summaries and the per-chunk index.  ``put`` / ``get`` / ``append`` /
  ``info`` / ``compact`` take ``--url http://host:port`` to talk to a
  running ``repro serve`` instead of a local directory (``get --url
  --client-decode`` fetches compressed chunks and decodes locally).
* ``serve``      — serve every store under a root directory over HTTP
  (see :mod:`repro.serve`), including the ``/debug`` flight-recorder
  endpoints (dashboard, metrics history, slow-request capture, on-demand
  profiler).
* ``profile``    — re-run another repro invocation in-process under the
  sampling profiler and write a speedscope JSON profile
  (``repro profile --out prof.json -- compress field.npy --volume``).
* ``top``        — poll a running server's ``/metrics`` into a live
  terminal view (request rates, route latency quantiles, cache hits).
* ``lint``       — the repo-specific invariant checkers
  (:mod:`repro.analysis`): dtype-cast safety, async-blocking discipline,
  binary-format/golden pairing, worker-boundary hygiene, seeded
  randomness, resource hygiene, timing discipline.  ``--format json``
  for machines.

The CLI intentionally exposes only the high-level entry points; everything
it does is a thin wrapper over the public API, so scripts can always drop
down to :mod:`repro.core` directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro.core.experiment import ExperimentConfig
from repro.core.figures import (
    figure3_global_range_gaussian,
    figure4_global_range_miranda,
    figure5_local_range_gaussian,
    figure6_local_svd_gaussian,
    figure7_local_stats_miranda,
)
from repro.core.pipeline import run_experiment
from repro.core.reporting import format_table, series_to_markdown, write_records_csv
from repro.datasets.io import load_field, load_raw
from repro.datasets.registry import default_registry
from repro.pressio.api import compress_and_measure
from repro.stats.entropy import quantized_entropy
from repro.stats.local import std_local_variogram_range
from repro.stats.svd import std_local_svd_truncation
from repro.stats.variogram_models import estimate_variogram_range
from repro.utils.parallel import ParallelConfig

__all__ = ["main", "build_parser"]

_FIGURES = {
    "3": figure3_global_range_gaussian,
    "4": figure4_global_range_miranda,
    "5": figure5_local_range_gaussian,
    "6": figure6_local_svd_gaussian,
    "7": figure7_local_stats_miranda,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Exploring Lossy Compressibility through "
        "Statistical Correlations of Scientific Datasets' (SC 2021).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # ---- compress ------------------------------------------------------
    compress = subparsers.add_parser("compress", help="compress a field file and report metrics")
    _add_field_arguments(compress)
    compress.add_argument("--compressor", default="sz", choices=("sz", "zfp", "mgard"))
    compress.add_argument("--error-bound", type=float, default=1e-3)
    compress.add_argument(
        "--mode", default="abs", choices=("abs", "rel"), help="error bound interpretation"
    )
    compress.add_argument(
        "--volume",
        action="store_true",
        help="compress a 3D input natively through the tiled volume pipeline "
        "instead of taking its middle slice",
    )
    compress.add_argument(
        "--tile",
        type=int,
        default=64,
        help="tile edge length for the volume pipeline (with --volume)",
    )
    compress.add_argument(
        "--workers", type=int, default=1, help="tile workers (with --volume)"
    )
    compress.add_argument(
        "--baseline",
        action="store_true",
        help="also report the slice-by-slice baseline CR (with --volume)",
    )
    compress.add_argument(
        "--stream",
        action="store_true",
        help="with --volume and a .npy field: stream the volume slab by "
        "slab (bounded memory — at most one slab of tiles plus halo "
        "planes resident); output is bit-identical to the one-shot path",
    )
    compress.add_argument(
        "--halo",
        action="store_true",
        help="halo-aware tiling: wavefront-ordered tiles predict and "
        "entropy code across tile seams (with --volume)",
    )
    compress.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record nested timing spans of the compression and write them "
        "as Chrome trace-event JSON (open in Perfetto or chrome://tracing)",
    )
    compress.add_argument(
        "--profile-out",
        default=None,
        metavar="PATH",
        help="sample the run with the stdlib sampling profiler and write a "
        "speedscope JSON profile (open at https://www.speedscope.app)",
    )
    compress.add_argument(
        "--profile-hz",
        type=float,
        default=None,
        help="profiler sampling rate in Hz (default 99)",
    )

    # ---- profile -------------------------------------------------------
    profile = subparsers.add_parser(
        "profile",
        help="run another repro command under the sampling profiler",
        description="Re-runs the repro invocation after '--' in-process "
        "with the sampling profiler attached and writes a speedscope JSON "
        "profile, e.g.: repro profile --out prof.json -- compress field.npy "
        "--volume",
    )
    profile.add_argument(
        "--out", required=True, metavar="PATH", help="speedscope JSON output"
    )
    profile.add_argument(
        "--hz", type=float, default=None, help="sampling rate in Hz (default 99)"
    )
    profile.add_argument(
        "command_argv",
        nargs=argparse.REMAINDER,
        metavar="-- <repro subcommand ...>",
        help="the repro invocation to profile",
    )

    # ---- top -----------------------------------------------------------
    top = subparsers.add_parser(
        "top", help="live terminal view of a serving instance's /metrics"
    )
    top.add_argument("url", help="server base URL, e.g. http://127.0.0.1:8787")
    top.add_argument(
        "--interval", type=float, default=2.0, help="poll interval in seconds"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="frames to render before exiting (0 = run until interrupted)",
    )

    # ---- stats ---------------------------------------------------------
    stats = subparsers.add_parser("stats", help="correlation statistics of a field file")
    _add_field_arguments(stats)
    stats.add_argument("--window", type=int, default=32)
    stats.add_argument("--error-bound", type=float, default=1e-3, help="bound for the entropy statistic")

    # ---- experiment ----------------------------------------------------
    experiment = subparsers.add_parser("experiment", help="run a dataset sweep, write CSV")
    experiment.add_argument(
        "dataset",
        choices=(
            "gaussian-single",
            "gaussian-multi",
            "gaussian-nonstationary",
            "miranda",
            "miranda-volume",
        ),
    )
    experiment.add_argument("--output", required=True, help="CSV output path")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--size", type=int, default=128, help="Gaussian field edge length")
    experiment.add_argument(
        "--bounds", type=float, nargs="+", default=[1e-5, 1e-4, 1e-3, 1e-2]
    )
    experiment.add_argument(
        "--compressors", nargs="+", default=["sz", "zfp", "mgard"],
        choices=("sz", "zfp", "mgard"),
    )
    experiment.add_argument("--workers", type=int, default=1)
    experiment.add_argument(
        "--skip-local-stats", action="store_true", help="compute only the global variogram range"
    )

    # ---- store ---------------------------------------------------------
    store = subparsers.add_parser("store", help="chunked compressed array store")
    store_sub = store.add_subparsers(dest="store_command", required=True)

    put = store_sub.add_parser("put", help="compress an array into a store directory")
    put.add_argument("store", help="store directory (created if missing)")
    source = put.add_mutually_exclusive_group(required=True)
    source.add_argument("--field", help="path to a .npy file or an SDRBench raw binary")
    source.add_argument(
        "--dataset",
        help="registry dataset name (e.g. miranda-volume); the field selected "
        "by --label (default: the first field)",
    )
    put.add_argument("--label", default=None, help="field label within --dataset")
    put.add_argument("--seed", type=int, default=0, help="dataset realisation seed")
    put.add_argument(
        "--raw-shape", type=int, nargs="+", default=None,
        help="shape of a raw binary --field (omit for .npy files)",
    )
    put.add_argument("--raw-dtype", default="float32", choices=("float32", "float64"))
    put.add_argument(
        "--codec",
        default="sz",
        help="codec policy: a registry name (sz/zfp/mgard), 'adaptive[:a+b]' "
        "(per-chunk sampling-estimator selection) or 'best[:a+b]' (exhaustive)",
    )
    put.add_argument("--error-bound", type=float, default=1e-3)
    put.add_argument(
        "--chunk", type=int, default=None,
        help="chunk edge length (default: 128 for 2D, 64 for 3D)",
    )
    put.add_argument("--workers", type=int, default=1, help="parallel chunk workers")
    put.add_argument(
        "--stream",
        action="store_true",
        help="with a 3D .npy --field: stream the volume into the store "
        "slab by slab (chunk-edge-aligned appends, bounded memory) "
        "instead of loading it whole",
    )
    put.add_argument(
        "--no-chunk-stats", action="store_true",
        help="skip the per-chunk correlation statistics",
    )
    put.add_argument(
        "--overwrite", action="store_true", help="replace an existing store"
    )
    put.add_argument(
        "--halo",
        action="store_true",
        help="halo-aware chunking: odd-parity chunks predict and entropy "
        "code against their anchor neighbours",
    )

    put.add_argument(
        "--url", default=None,
        help="PUT to a running 'repro serve' (the store argument is the "
        "dataset name, not a directory)",
    )

    get = store_sub.add_parser("get", help="read a region from a store")
    get.add_argument("store", help="store directory (or dataset name with --url)")
    get.add_argument(
        "--region", default=None,
        help="comma-separated per-axis slices, e.g. '0:32,0:32,16:48' "
        "(omitted axes read fully; bare integers drop the axis)",
    )
    get.add_argument("--output", default=None, help="write the region to this .npy file")
    get.add_argument(
        "--url", default=None, help="read from a running 'repro serve'"
    )
    get.add_argument(
        "--client-decode", action="store_true",
        help="with --url: fetch still-compressed chunks and decode locally",
    )
    get.add_argument(
        "--workers", type=int, default=1,
        help="local reads: decode chunks with this many workers (two-wave "
        "parallel decode over shared memory; 1 = serial)",
    )

    append = store_sub.add_parser(
        "append", help="grow a store along axis 0 with a field file"
    )
    append.add_argument("store", help="store directory (or dataset name with --url)")
    append.add_argument("--field", required=True, help=".npy file or SDRBench raw binary")
    append.add_argument(
        "--raw-shape", type=int, nargs="+", default=None,
        help="shape of a raw binary --field (omit for .npy files)",
    )
    append.add_argument("--raw-dtype", default="float32", choices=("float32", "float64"))
    append.add_argument(
        "--url", default=None, help="append via a running 'repro serve'"
    )

    compact = store_sub.add_parser(
        "compact", help="rewrite chunks.bin to reclaim orphaned payload bytes"
    )
    compact.add_argument("store", help="store directory (or dataset name with --url)")
    compact.add_argument(
        "--url", default=None, help="compact via a running 'repro serve'"
    )

    info = store_sub.add_parser("info", help="summarise a store")
    info.add_argument("store", help="store directory (or dataset name with --url)")
    info.add_argument(
        "--url", default=None, help="query a running 'repro serve'"
    )

    ls = store_sub.add_parser("ls", help="per-chunk listing of a store")
    ls.add_argument("store", help="store directory")

    # ---- serve ---------------------------------------------------------
    serve = subparsers.add_parser(
        "serve", help="serve the stores under a root directory over HTTP"
    )
    serve.add_argument("root", help="directory whose store subdirectories are served")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8787,
        help="TCP port (0 picks an ephemeral port, printed on startup)",
    )
    serve.add_argument(
        "--max-concurrency", type=int, default=8,
        help="semaphore bound on concurrently handled requests",
    )
    serve.add_argument(
        "--cache-mb", type=int, default=256,
        help="hot-chunk decode cache budget in MiB",
    )
    serve.add_argument(
        "--decode-workers", type=int, default=2,
        help="thread-pool workers for chunk decode/compress work",
    )
    serve.add_argument(
        "--max-body-mb", type=int, default=512,
        help="largest accepted request body / decoded response in MiB",
    )
    serve.add_argument(
        "--access-log",
        default=None,
        metavar="PATH",
        help="append one JSON line per handled request to this file",
    )
    serve.add_argument(
        "--access-log-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="rotate the access log before it exceeds N bytes "
        "(path -> path.1 -> ...; default: never rotate)",
    )
    serve.add_argument(
        "--access-log-backups",
        type=int,
        default=3,
        metavar="N",
        help="rotated access-log files kept (with --access-log-max-bytes)",
    )
    serve.add_argument(
        "--metrics",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="expose GET /metrics in Prometheus text format "
        "(--no-metrics disables the endpoint)",
    )
    serve.add_argument(
        "--latency-buckets",
        type=float,
        nargs="+",
        default=None,
        metavar="SECONDS",
        help="request-latency histogram bucket bounds in seconds "
        "(default: the built-in 1ms..5s set; shown in GET /stats)",
    )
    serve.add_argument(
        "--debug",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="expose the /debug flight-recorder endpoints (dashboard, "
        "metrics history, slow requests, on-demand profiler)",
    )
    serve.add_argument(
        "--slow-requests",
        type=int,
        default=8,
        metavar="N",
        help="slowest span trees retained per route for GET /debug/requests "
        "(0 disables capture)",
    )
    serve.add_argument(
        "--history-interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="metrics-history snapshot interval for GET /debug/vars",
    )

    # ---- lint ----------------------------------------------------------
    lint = subparsers.add_parser(
        "lint", help="repo-specific invariant checkers (static analysis)"
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)

    # ---- figure --------------------------------------------------------
    figure = subparsers.add_parser("figure", help="regenerate one of the paper's figures (3-7)")
    figure.add_argument("number", choices=sorted(_FIGURES))
    figure.add_argument("--seed", type=int, default=0)
    figure.add_argument("--size", type=int, default=128, help="Gaussian field edge length")
    figure.add_argument("--markdown", action="store_true", help="emit Markdown tables")
    figure.add_argument("--workers", type=int, default=1)
    return parser


def _add_field_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("field", help="path to a .npy file or an SDRBench raw binary")
    parser.add_argument(
        "--raw-shape",
        type=int,
        nargs="+",
        default=None,
        help="shape of the raw binary (omit for .npy files)",
    )
    parser.add_argument("--raw-dtype", default="float32", choices=("float32", "float64"))
    parser.add_argument(
        "--slice-axis",
        type=int,
        default=0,
        help="for 3D inputs: axis along which the middle slice is taken",
    )


def _load_2d_field(args: argparse.Namespace) -> np.ndarray:
    if args.raw_shape is not None:
        field = load_raw(args.field, args.raw_shape, dtype=args.raw_dtype)
    else:
        field = load_field(args.field)
    field = np.asarray(field, dtype=np.float64)
    if field.ndim == 3:
        index = field.shape[args.slice_axis] // 2
        field = np.take(field, index, axis=args.slice_axis)
    if field.ndim != 2:
        raise SystemExit(f"expected a 2D or 3D field, got shape {field.shape}")
    return field


def _load_any_field(args: argparse.Namespace) -> np.ndarray:
    if args.raw_shape is not None:
        field = load_raw(args.field, args.raw_shape, dtype=args.raw_dtype)
    else:
        field = load_field(args.field)
    return np.asarray(field, dtype=np.float64)


def _command_compress_volume_stream(args: argparse.Namespace) -> int:
    """Streaming volume compress: slab-by-slab, bounded memory.

    Never loads the full volume: the source ``.npy`` is read slab by slab
    for compression, and the error metrics come from a second streaming
    pass comparing each reconstructed slab against a re-read source slab.
    """

    from repro.utils.parallel import ParallelConfig
    from repro.volumes.streaming import (
        compress_volume_stream,
        decompress_volume_stream,
        open_slab_source,
    )

    if args.raw_shape is not None:
        raise SystemExit("--stream needs a .npy field (raw binaries are not supported)")
    if args.baseline:
        raise SystemExit("--baseline needs the full volume; drop it with --stream")
    try:
        reader = open_slab_source(args.field)
    except (ValueError, OSError) as exc:
        raise SystemExit(f"cannot stream {args.field}: {exc}") from exc

    bound = args.error_bound
    if args.mode == "rel":
        lo, hi = np.inf, -np.inf
        for row_start in range(0, reader.shape[0], args.tile):
            slab = reader.read(row_start, min(args.tile, reader.shape[0] - row_start))
            lo, hi = min(lo, float(slab.min())), max(hi, float(slab.max()))
        bound = args.error_bound * (hi - lo)

    parallel = ParallelConfig(workers=args.workers) if args.workers > 1 else None
    compressed = compress_volume_stream(
        args.field,
        args.compressor,
        bound,
        tile_shape=(args.tile,) * 3,
        parallel=parallel,
        halo=args.halo,
    )

    max_abs_error = 0.0
    sq_sum = 0.0
    lo, hi = np.inf, -np.inf
    count = 0
    for row_start, slab in decompress_volume_stream(compressed):
        source = np.asarray(
            reader.read(row_start, slab.shape[0]), dtype=np.float64
        )
        diff = np.abs(source - slab)
        max_abs_error = max(max_abs_error, float(diff.max()))
        sq_sum += float(np.square(diff, out=diff).sum())
        lo, hi = min(lo, float(source.min())), max(hi, float(source.max()))
        count += source.size
    rmse = (sq_sum / count) ** 0.5 if count else 0.0
    value_range = hi - lo
    psnr = (
        20.0 * np.log10(value_range / rmse)
        if rmse > 0 and value_range > 0
        else float("inf")
    )
    bound_satisfied = max_abs_error <= bound * (1.0 + 1e-9)

    rows = [
        ("compressor", args.compressor),
        ("error bound", f"{bound:g} (abs)"),
        ("volume shape", "x".join(str(s) for s in compressed.shape)),
        ("tiles", f"{compressed.n_tiles} ({args.tile}^3, streamed)"),
        ("halo", str(bool(args.halo))),
        ("compression ratio", f"{compressed.compression_ratio:.3f}"),
        (
            "bit rate (bits/value)",
            f"{8.0 * compressed.compressed_nbytes / count:.3f}",
        ),
        ("max abs error", f"{max_abs_error:.3e}"),
        ("RMSE", f"{rmse:.3e}"),
        ("PSNR (dB)", f"{psnr:.2f}"),
        ("bound satisfied", str(bound_satisfied)),
    ]
    print(format_table(("quantity", "value"), rows))
    return 0 if bound_satisfied else 1


def _command_compress_volume(args: argparse.Namespace, volume: np.ndarray) -> int:
    from repro.utils.parallel import ParallelConfig
    from repro.volumes.pipeline import compress_volume, slice_baseline, volume_metrics

    if args.mode == "rel":
        bound = args.error_bound * float(volume.max() - volume.min())
    else:
        bound = args.error_bound
    parallel = ParallelConfig(workers=args.workers) if args.workers > 1 else None
    compressed = compress_volume(
        volume,
        args.compressor,
        bound,
        tile_shape=(args.tile,) * 3,
        parallel=parallel,
        halo=args.halo,
    )
    metrics = volume_metrics(volume, compressed)
    rows = [
        ("compressor", args.compressor),
        ("error bound", f"{bound:g} (abs)"),
        ("volume shape", "x".join(str(s) for s in volume.shape)),
        ("tiles", f"{compressed.n_tiles} ({args.tile}^3)"),
        ("halo", str(bool(args.halo))),
        ("compression ratio", f"{metrics.compression_ratio:.3f}"),
        ("bit rate (bits/value)", f"{metrics.bit_rate:.3f}"),
        ("max abs error", f"{metrics.max_abs_error:.3e}"),
        ("RMSE", f"{metrics.rmse:.3e}"),
        ("PSNR (dB)", f"{metrics.psnr:.2f}"),
        ("bound satisfied", str(metrics.bound_satisfied)),
    ]
    if args.baseline:
        baseline_cr = slice_baseline(volume, args.compressor, bound)
        rows.append(("slice-by-slice baseline CR", f"{baseline_cr:.3f}"))
    print(format_table(("quantity", "value"), rows))
    return 0 if metrics.bound_satisfied else 1


def _command_compress(args: argparse.Namespace) -> int:
    if args.profile_out:
        from repro.obs.profile import DEFAULT_HZ, SamplingProfiler

        profiler = SamplingProfiler(hz=args.profile_hz or DEFAULT_HZ)
        with profiler:
            code = _compress_with_trace(args)
        profiler.write_speedscope(
            args.profile_out, name=f"repro compress {args.field}"
        )
        print(
            f"wrote {profiler.sample_count} samples "
            f"({profiler.elapsed:.2f}s @ {profiler.hz:g}Hz) to "
            f"{args.profile_out}"
        )
        _print_hot_functions(profiler)
        return code
    return _compress_with_trace(args)


def _compress_with_trace(args: argparse.Namespace) -> int:
    if args.trace_out:
        from repro.obs.trace import Tracer, install_tracer

        tracer = Tracer()
        with install_tracer(tracer):
            code = _run_compress(args)
        tracer.write_chrome_trace(args.trace_out)
        print(f"wrote {len(tracer.spans())} spans to {args.trace_out}")
        return code
    return _run_compress(args)


def _print_hot_functions(profiler, top: int = 8) -> None:
    rows = profiler.hot_functions(top)
    if not rows:
        return
    print("hot functions (self samples / total samples):")
    for label, self_samples, total_samples in rows:
        print(f"  {self_samples:>6} / {total_samples:>6}  {label}")


def _command_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import DEFAULT_HZ, SamplingProfiler

    argv = list(args.command_argv)
    if argv and argv[0] == "--":
        argv = argv[1:]
    if not argv:
        raise SystemExit(
            "usage: repro profile --out prof.json -- <repro subcommand ...>"
        )
    if argv[0] == "profile":
        raise SystemExit("refusing to profile 'repro profile' recursively")
    profiler = SamplingProfiler(hz=args.hz or DEFAULT_HZ)
    with profiler:
        code = main(argv)
    profiler.write_speedscope(args.out, name="repro " + " ".join(argv))
    print(
        f"profiled 'repro {' '.join(argv)}': {profiler.sample_count} samples "
        f"over {profiler.elapsed:.2f}s -> {args.out}"
    )
    _print_hot_functions(profiler)
    return code


def _command_top(args: argparse.Namespace) -> int:
    import time

    from repro.obs.top import parse_prometheus, render_frame
    from repro.serve.client import ServeError, StoreClient

    previous = None
    previous_at = 0.0
    frames = 0
    try:
        with StoreClient(args.url) as client:
            while True:
                try:
                    text = client.metrics_text()
                except (ServeError, ConnectionError, OSError) as exc:
                    raise SystemExit(f"cannot scrape {args.url}/metrics: {exc}")
                now = time.perf_counter()
                scrape = parse_prometheus(text)
                frame = render_frame(
                    scrape,
                    previous,
                    now - previous_at if previous is not None else 0.0,
                    title=f"repro top — {args.url}",
                )
                # ANSI clear + home keeps the frame in place on real
                # terminals; harmless noise when piped to a file.
                if sys.stdout.isatty():
                    print("\x1b[2J\x1b[H", end="")
                print(frame, flush=True)
                previous, previous_at = scrape, now
                frames += 1
                if args.iterations and frames >= args.iterations:
                    return 0
                time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _run_compress(args: argparse.Namespace) -> int:
    if args.stream and not args.volume:
        raise SystemExit("--stream only applies with --volume")
    if args.volume:
        if args.stream:
            return _command_compress_volume_stream(args)
        volume = _load_any_field(args)
        if volume.ndim != 3:
            raise SystemExit(f"--volume expects a 3D field, got shape {volume.shape}")
        return _command_compress_volume(args, volume)
    field = _load_2d_field(args)
    compressed, metrics = compress_and_measure(
        field, args.compressor, args.error_bound, mode=args.mode
    )
    rows = [
        ("compressor", args.compressor),
        ("error bound", f"{compressed.error_bound:g} (abs)"),
        ("field shape", "x".join(str(s) for s in field.shape)),
        ("compression ratio", f"{metrics.compression_ratio:.3f}"),
        ("bit rate (bits/value)", f"{metrics.bit_rate:.3f}"),
        ("max abs error", f"{metrics.max_abs_error:.3e}"),
        ("RMSE", f"{metrics.rmse:.3e}"),
        ("PSNR (dB)", f"{metrics.psnr:.2f}"),
        ("bound satisfied", str(metrics.bound_satisfied)),
    ]
    print(format_table(("quantity", "value"), rows))
    return 0 if metrics.bound_satisfied else 1


def _command_stats(args: argparse.Namespace) -> int:
    field = _load_2d_field(args)
    rows = [
        ("field shape", "x".join(str(s) for s in field.shape)),
        ("mean", f"{field.mean():.4f}"),
        ("std", f"{field.std():.4f}"),
        ("global variogram range", f"{estimate_variogram_range(field):.3f}"),
    ]
    if min(field.shape) >= args.window:
        rows.append(
            (
                f"std local variogram range (H={args.window})",
                f"{std_local_variogram_range(field, args.window):.3f}",
            )
        )
        rows.append(
            (
                f"std local SVD truncation (H={args.window})",
                f"{std_local_svd_truncation(field, args.window):.3f}",
            )
        )
    rows.append(
        (
            f"quantized entropy @ {args.error_bound:g} (bits/value)",
            f"{quantized_entropy(field, args.error_bound):.3f}",
        )
    )
    print(format_table(("statistic", "value"), rows))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    registry = default_registry(gaussian_shape=(args.size, args.size))
    config = ExperimentConfig(
        compressors=tuple(args.compressors),
        error_bounds=tuple(args.bounds),
        compute_local_variogram=not args.skip_local_stats,
        compute_local_svd=not args.skip_local_stats,
    )
    parallel = ParallelConfig(workers=args.workers) if args.workers > 1 else None
    result = run_experiment(
        args.dataset, config=config, registry=registry, seed=args.seed, parallel=parallel
    )
    write_records_csv(args.output, result.records)
    print(f"wrote {len(result.records)} records to {args.output}")
    return 0


def _parse_region(text: Optional[str]):
    """Parse ``'0:32,5,16:'`` into a tuple of slices/ints (None for all)."""

    from repro.store.region import parse_region_text

    try:
        return parse_region_text(text)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _open_client(url: str):
    from repro.serve.client import StoreClient

    return StoreClient(url)


def _command_store(args: argparse.Namespace) -> int:
    from repro.store import ArrayStore

    handlers = {
        "put": _command_store_put,
        "get": _command_store_get,
        "append": _command_store_append,
        "compact": _command_store_compact,
        "info": _command_store_info,
        "ls": _command_store_ls,
    }
    return handlers[args.store_command](args, ArrayStore)


def _command_store_put_stream(args: argparse.Namespace, ArrayStore) -> int:
    """Stream a 3D .npy field into a store slab by slab.

    Slabs are chunk-edge-aligned along axis 0, so every flush except the
    first is a pure ``append`` and peak memory stays one slab's worth
    regardless of volume size."""
    from repro.store.array_store import DEFAULT_CHUNK_EDGES
    from repro.volumes.streaming import open_slab_source

    if args.url:
        raise SystemExit("--stream only applies to local stores, not --url")
    if args.dataset is not None or args.field is None:
        raise SystemExit("--stream requires a --field file source")
    if args.raw_shape is not None:
        raise SystemExit("--stream requires a .npy --field (not a raw binary)")
    try:
        source = open_slab_source(args.field)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot stream {args.field}: {exc}")
    if len(source.shape) != 3:
        raise SystemExit(
            f"--stream requires a 3D volume, got shape {source.shape}"
        )

    edge0 = args.chunk if args.chunk is not None else DEFAULT_CHUNK_EDGES[3]
    store = ArrayStore.create(
        args.store,
        chunk_shape=args.chunk,
        error_bound=args.error_bound,
        codec=args.codec,
        chunk_stats=not args.no_chunk_stats,
        overwrite=args.overwrite,
        halo=args.halo,
    )
    parallel = ParallelConfig(workers=args.workers) if args.workers > 1 else None
    n_slabs = 0
    for row_start in range(0, source.shape[0], edge0):
        slab = source.read(row_start, min(edge0, source.shape[0] - row_start))
        if row_start == 0:
            store.write(slab, parallel=parallel)
        else:
            store.append(slab, parallel=parallel)
        n_slabs += 1
    print(f"streamed {n_slabs} slab(s) of {edge0} row(s)")
    return _print_store_info(store)


def _command_store_put(args: argparse.Namespace, ArrayStore) -> int:
    if args.stream:
        return _command_store_put_stream(args, ArrayStore)
    if args.field is not None:
        array = _load_any_field(args)
    else:
        fields = default_registry().create(args.dataset, seed=args.seed)
        labels = [label for label, _ in fields]
        if args.label is None:
            label, array = fields[0]
        else:
            matches = [f for f in fields if f[0] == args.label]
            if not matches:
                raise SystemExit(
                    f"label {args.label!r} not in dataset {args.dataset!r}; "
                    f"available: {labels}"
                )
            label, array = matches[0]
        print(f"dataset field: {label}")
    if array.ndim not in (2, 3):
        raise SystemExit(f"store arrays must be 2D or 3D, got shape {array.shape}")

    if args.url:
        with _open_client(args.url) as client:
            summary = client.put(
                args.store,
                array,
                codec=args.codec,
                error_bound=args.error_bound,
                chunk=args.chunk,
                halo=args.halo,
            )
        print(
            f"put {summary['name']}: shape "
            f"{'x'.join(str(s) for s in summary['shape'])}, "
            f"{summary['n_chunks']} chunks, "
            f"CR {summary['compression_ratio']:.3f}"
        )
        return 0

    store = ArrayStore.create(
        args.store,
        chunk_shape=args.chunk,
        error_bound=args.error_bound,
        codec=args.codec,
        chunk_stats=not args.no_chunk_stats,
        overwrite=args.overwrite,
        halo=args.halo,
    )
    parallel = ParallelConfig(workers=args.workers) if args.workers > 1 else None
    store.write(array, parallel=parallel)
    return _print_store_info(store)


def _command_store_get(args: argparse.Namespace, ArrayStore) -> int:
    region = _parse_region(args.region)
    if args.url:
        with _open_client(args.url) as client:
            values = client.get(
                args.store,
                region,
                decode="client" if args.client_decode else "server",
            )
        mode = "client-decoded" if args.client_decode else "server-decoded"
        print(f"read {values.shape} from {args.url}/ds/{args.store} ({mode})")
    else:
        if args.client_decode:
            raise SystemExit("--client-decode only applies with --url")
        store = ArrayStore.open(args.store)
        parallel = (
            ParallelConfig(workers=args.workers) if args.workers > 1 else None
        )
        values = store.read(region, parallel=parallel)
        report = store.last_read
        print(
            f"read {values.shape} from {store.shape}: decoded "
            f"{report.chunks_decoded}/{report.chunks_total} chunks "
            f"({report.chunks_intersecting} intersecting)"
        )
    if args.output:
        np.save(args.output, values)
        print(f"wrote {args.output}")
    else:
        print(
            f"min={values.min():.6g} max={values.max():.6g} "
            f"mean={values.mean():.6g} std={values.std():.6g}"
        )
    return 0


def _command_store_append(args: argparse.Namespace, ArrayStore) -> int:
    array = _load_any_field(args)
    if args.url:
        with _open_client(args.url) as client:
            summary = client.append(args.store, array)
        print(
            f"appended to {summary['name']}: shape "
            f"{'x'.join(str(s) for s in summary['shape'])}, "
            f"{summary['n_chunks']} chunks, "
            f"{summary['orphaned_nbytes']} orphaned bytes"
        )
        return 0
    store = ArrayStore.open(args.store)
    store.append(array)
    print(
        f"appended to {args.store}: shape "
        f"{'x'.join(str(s) for s in store.shape)}, "
        f"{store.n_chunks} chunks, {store.orphaned_nbytes} orphaned bytes"
    )
    return 0


def _command_store_compact(args: argparse.Namespace, ArrayStore) -> int:
    if args.url:
        with _open_client(args.url) as client:
            report = client.compact(args.store)
    else:
        report = ArrayStore.open(args.store).compact()
    print(
        f"compacted: reclaimed {report['reclaimed_nbytes']} bytes, "
        f"data file now {report['data_file_nbytes']} bytes "
        f"({report['n_ranges']} payload ranges)"
    )
    return 0


def _print_store_info(store) -> int:
    info = store.info()
    if info["shape"] is None:
        print(f"store {info['path']} holds no data yet (codec policy "
              f"{info['codec_policy']}, error bound {info['error_bound']:g})")
        return 0
    rows = [
        ("shape", "x".join(str(s) for s in info["shape"])),
        ("chunk shape", "x".join(str(s) for s in info["chunk_shape"])),
        ("chunks", str(info["n_chunks"])),
        ("codec policy", info["codec_policy"]),
        ("error bound", f"{info['error_bound']:g}"),
        ("compression ratio", f"{info['compression_ratio']:.3f}"),
        ("compressed bytes", str(info["compressed_nbytes"])),
        ("stored bytes (dedup)", str(info["stored_nbytes"])),
        ("codec histogram", ", ".join(f"{k}:{v}" for k, v in sorted(info["codec_histogram"].items()))),
    ]
    if "estimate_rel_error_mean" in info:
        rows.append(
            (
                "adaptive estimate rel. error",
                f"mean {info['estimate_rel_error_mean']:.3f} "
                f"max {info['estimate_rel_error_max']:.3f}",
            )
        )
    if info["cache_counters"]:
        counters = info["cache_counters"]
        rows.append(
            (
                "chunk cache (last write)",
                ", ".join(f"{k}:{v}" for k, v in sorted(counters.items())),
            )
        )
    print(format_table(("quantity", "value"), rows))
    return 0


def _command_store_info(args: argparse.Namespace, ArrayStore) -> int:
    if args.url:
        import json as _json

        with _open_client(args.url) as client:
            info = client.info(args.store)
        print(_json.dumps(info, indent=2, sort_keys=True))
        return 0
    return _print_store_info(ArrayStore.open(args.store))


def _command_store_ls(args: argparse.Namespace, ArrayStore) -> int:
    store = ArrayStore.open(args.store)
    rows = []
    for record in store.chunk_records():
        est = f"{record.estimated_cr:.2f}" if np.isfinite(record.estimated_cr) else "-"
        vrange = record.stats.get("variogram_range", float("nan"))
        rows.append(
            (
                ",".join(str(i) for i in record.grid_index),
                "x".join(str(s) for s in record.shape),
                record.codec,
                str(record.nbytes),
                f"{record.compression_ratio:.2f}",
                est,
                f"{vrange:.2f}" if np.isfinite(vrange) else "-",
            )
        )
    print(
        format_table(
            ("chunk", "shape", "codec", "bytes", "CR", "est CR", "vrange"), rows
        )
    )
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    registry = default_registry(gaussian_shape=(args.size, args.size))
    parallel = ParallelConfig(workers=args.workers) if args.workers > 1 else None
    driver = _FIGURES[args.number]
    output = driver(registry=registry, seed=args.seed, parallel=parallel)
    for panel, series_list in output.items():
        title = f"Figure {args.number} — {panel}"
        if args.markdown:
            print(series_to_markdown(series_list, title=title))
            print()
            continue
        print(f"\n=== {title} ===")
        rows = []
        for series in sorted(series_list, key=lambda s: (s.compressor, s.error_bound)):
            if series.fit is None:
                rows.append((series.compressor, f"{series.error_bound:g}", "-", "-", "-", series.n_points))
            else:
                rows.append(
                    (
                        series.compressor,
                        f"{series.error_bound:g}",
                        series.fit.alpha,
                        series.fit.beta,
                        series.fit.r_squared,
                        series.fit.n_points,
                    )
                )
        print(format_table(("compressor", "bound", "alpha", "beta", "R^2", "points"), rows))
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint_command

    return run_lint_command(args)


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.server import ArrayServer, ServerConfig

    config = ServerConfig(
        root=args.root,
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        cache_nbytes=args.cache_mb * 1024 * 1024,
        decode_workers=args.decode_workers,
        max_body_nbytes=args.max_body_mb * 1024 * 1024,
        max_response_nbytes=args.max_body_mb * 1024 * 1024,
        access_log=args.access_log,
        access_log_max_bytes=args.access_log_max_bytes,
        access_log_backups=args.access_log_backups,
        metrics=args.metrics,
        latency_buckets=(
            tuple(args.latency_buckets) if args.latency_buckets else None
        ),
        debug=args.debug,
        slow_requests_per_route=args.slow_requests,
        history_interval=args.history_interval,
    )

    async def run() -> None:
        server = ArrayServer(config)
        await server.start()
        print(f"serving {config.root} at {server.url}", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script."""

    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handlers = {
        "compress": _command_compress,
        "stats": _command_stats,
        "experiment": _command_experiment,
        "figure": _command_figure,
        "store": _command_store,
        "serve": _command_serve,
        "lint": _command_lint,
        "profile": _command_profile,
        "top": _command_top,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
