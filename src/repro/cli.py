"""Command-line interface.

``python -m repro <command>`` drives the most common workflows without
writing any Python:

* ``compress``   — compress a field file (``.npy`` or SDRBench raw) with a
  named compressor and error bound; report CR / PSNR / max error.
* ``stats``      — report the correlation statistics of a field file
  (global variogram range, local statistics, entropy).
* ``experiment`` — run a named dataset sweep (``gaussian-single``,
  ``gaussian-multi``, ``miranda``) and write the records to CSV.
* ``figure``     — regenerate one of the paper's figures (3-7) and print
  the fitted-series table (optionally as Markdown).

The CLI intentionally exposes only the high-level entry points; everything
it does is a thin wrapper over the public API, so scripts can always drop
down to :mod:`repro.core` directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.core.experiment import ExperimentConfig
from repro.core.figures import (
    figure3_global_range_gaussian,
    figure4_global_range_miranda,
    figure5_local_range_gaussian,
    figure6_local_svd_gaussian,
    figure7_local_stats_miranda,
)
from repro.core.pipeline import run_experiment
from repro.core.reporting import format_table, series_to_markdown, write_records_csv
from repro.datasets.io import load_field, load_raw
from repro.datasets.registry import default_registry
from repro.pressio.api import compress_and_measure
from repro.stats.entropy import quantized_entropy
from repro.stats.local import std_local_variogram_range
from repro.stats.svd import std_local_svd_truncation
from repro.stats.variogram_models import estimate_variogram_range
from repro.utils.parallel import ParallelConfig

__all__ = ["main", "build_parser"]

_FIGURES = {
    "3": figure3_global_range_gaussian,
    "4": figure4_global_range_miranda,
    "5": figure5_local_range_gaussian,
    "6": figure6_local_svd_gaussian,
    "7": figure7_local_stats_miranda,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Exploring Lossy Compressibility through "
        "Statistical Correlations of Scientific Datasets' (SC 2021).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # ---- compress ------------------------------------------------------
    compress = subparsers.add_parser("compress", help="compress a field file and report metrics")
    _add_field_arguments(compress)
    compress.add_argument("--compressor", default="sz", choices=("sz", "zfp", "mgard"))
    compress.add_argument("--error-bound", type=float, default=1e-3)
    compress.add_argument(
        "--mode", default="abs", choices=("abs", "rel"), help="error bound interpretation"
    )
    compress.add_argument(
        "--volume",
        action="store_true",
        help="compress a 3D input natively through the tiled volume pipeline "
        "instead of taking its middle slice",
    )
    compress.add_argument(
        "--tile",
        type=int,
        default=64,
        help="tile edge length for the volume pipeline (with --volume)",
    )
    compress.add_argument(
        "--workers", type=int, default=1, help="tile workers (with --volume)"
    )
    compress.add_argument(
        "--baseline",
        action="store_true",
        help="also report the slice-by-slice baseline CR (with --volume)",
    )

    # ---- stats ---------------------------------------------------------
    stats = subparsers.add_parser("stats", help="correlation statistics of a field file")
    _add_field_arguments(stats)
    stats.add_argument("--window", type=int, default=32)
    stats.add_argument("--error-bound", type=float, default=1e-3, help="bound for the entropy statistic")

    # ---- experiment ----------------------------------------------------
    experiment = subparsers.add_parser("experiment", help="run a dataset sweep, write CSV")
    experiment.add_argument(
        "dataset",
        choices=(
            "gaussian-single",
            "gaussian-multi",
            "gaussian-nonstationary",
            "miranda",
            "miranda-volume",
        ),
    )
    experiment.add_argument("--output", required=True, help="CSV output path")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--size", type=int, default=128, help="Gaussian field edge length")
    experiment.add_argument(
        "--bounds", type=float, nargs="+", default=[1e-5, 1e-4, 1e-3, 1e-2]
    )
    experiment.add_argument(
        "--compressors", nargs="+", default=["sz", "zfp", "mgard"],
        choices=("sz", "zfp", "mgard"),
    )
    experiment.add_argument("--workers", type=int, default=1)
    experiment.add_argument(
        "--skip-local-stats", action="store_true", help="compute only the global variogram range"
    )

    # ---- figure --------------------------------------------------------
    figure = subparsers.add_parser("figure", help="regenerate one of the paper's figures (3-7)")
    figure.add_argument("number", choices=sorted(_FIGURES))
    figure.add_argument("--seed", type=int, default=0)
    figure.add_argument("--size", type=int, default=128, help="Gaussian field edge length")
    figure.add_argument("--markdown", action="store_true", help="emit Markdown tables")
    figure.add_argument("--workers", type=int, default=1)
    return parser


def _add_field_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("field", help="path to a .npy file or an SDRBench raw binary")
    parser.add_argument(
        "--raw-shape",
        type=int,
        nargs="+",
        default=None,
        help="shape of the raw binary (omit for .npy files)",
    )
    parser.add_argument("--raw-dtype", default="float32", choices=("float32", "float64"))
    parser.add_argument(
        "--slice-axis",
        type=int,
        default=0,
        help="for 3D inputs: axis along which the middle slice is taken",
    )


def _load_2d_field(args: argparse.Namespace) -> np.ndarray:
    if args.raw_shape is not None:
        field = load_raw(args.field, args.raw_shape, dtype=args.raw_dtype)
    else:
        field = load_field(args.field)
    field = np.asarray(field, dtype=np.float64)
    if field.ndim == 3:
        index = field.shape[args.slice_axis] // 2
        field = np.take(field, index, axis=args.slice_axis)
    if field.ndim != 2:
        raise SystemExit(f"expected a 2D or 3D field, got shape {field.shape}")
    return field


def _load_any_field(args: argparse.Namespace) -> np.ndarray:
    if args.raw_shape is not None:
        field = load_raw(args.field, args.raw_shape, dtype=args.raw_dtype)
    else:
        field = load_field(args.field)
    return np.asarray(field, dtype=np.float64)


def _command_compress_volume(args: argparse.Namespace, volume: np.ndarray) -> int:
    from repro.utils.parallel import ParallelConfig
    from repro.volumes.pipeline import compress_volume, slice_baseline, volume_metrics

    if args.mode == "rel":
        bound = args.error_bound * float(volume.max() - volume.min())
    else:
        bound = args.error_bound
    parallel = ParallelConfig(workers=args.workers) if args.workers > 1 else None
    compressed = compress_volume(
        volume,
        args.compressor,
        bound,
        tile_shape=(args.tile,) * 3,
        parallel=parallel,
    )
    metrics = volume_metrics(volume, compressed)
    rows = [
        ("compressor", args.compressor),
        ("error bound", f"{bound:g} (abs)"),
        ("volume shape", "x".join(str(s) for s in volume.shape)),
        ("tiles", f"{compressed.n_tiles} ({args.tile}^3)"),
        ("compression ratio", f"{metrics.compression_ratio:.3f}"),
        ("bit rate (bits/value)", f"{metrics.bit_rate:.3f}"),
        ("max abs error", f"{metrics.max_abs_error:.3e}"),
        ("RMSE", f"{metrics.rmse:.3e}"),
        ("PSNR (dB)", f"{metrics.psnr:.2f}"),
        ("bound satisfied", str(metrics.bound_satisfied)),
    ]
    if args.baseline:
        baseline_cr = slice_baseline(volume, args.compressor, bound)
        rows.append(("slice-by-slice baseline CR", f"{baseline_cr:.3f}"))
    print(format_table(("quantity", "value"), rows))
    return 0 if metrics.bound_satisfied else 1


def _command_compress(args: argparse.Namespace) -> int:
    if args.volume:
        volume = _load_any_field(args)
        if volume.ndim != 3:
            raise SystemExit(f"--volume expects a 3D field, got shape {volume.shape}")
        return _command_compress_volume(args, volume)
    field = _load_2d_field(args)
    compressed, metrics = compress_and_measure(
        field, args.compressor, args.error_bound, mode=args.mode
    )
    rows = [
        ("compressor", args.compressor),
        ("error bound", f"{compressed.error_bound:g} (abs)"),
        ("field shape", "x".join(str(s) for s in field.shape)),
        ("compression ratio", f"{metrics.compression_ratio:.3f}"),
        ("bit rate (bits/value)", f"{metrics.bit_rate:.3f}"),
        ("max abs error", f"{metrics.max_abs_error:.3e}"),
        ("RMSE", f"{metrics.rmse:.3e}"),
        ("PSNR (dB)", f"{metrics.psnr:.2f}"),
        ("bound satisfied", str(metrics.bound_satisfied)),
    ]
    print(format_table(("quantity", "value"), rows))
    return 0 if metrics.bound_satisfied else 1


def _command_stats(args: argparse.Namespace) -> int:
    field = _load_2d_field(args)
    rows = [
        ("field shape", "x".join(str(s) for s in field.shape)),
        ("mean", f"{field.mean():.4f}"),
        ("std", f"{field.std():.4f}"),
        ("global variogram range", f"{estimate_variogram_range(field):.3f}"),
    ]
    if min(field.shape) >= args.window:
        rows.append(
            (
                f"std local variogram range (H={args.window})",
                f"{std_local_variogram_range(field, args.window):.3f}",
            )
        )
        rows.append(
            (
                f"std local SVD truncation (H={args.window})",
                f"{std_local_svd_truncation(field, args.window):.3f}",
            )
        )
    rows.append(
        (
            f"quantized entropy @ {args.error_bound:g} (bits/value)",
            f"{quantized_entropy(field, args.error_bound):.3f}",
        )
    )
    print(format_table(("statistic", "value"), rows))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    registry = default_registry(gaussian_shape=(args.size, args.size))
    config = ExperimentConfig(
        compressors=tuple(args.compressors),
        error_bounds=tuple(args.bounds),
        compute_local_variogram=not args.skip_local_stats,
        compute_local_svd=not args.skip_local_stats,
    )
    parallel = ParallelConfig(workers=args.workers) if args.workers > 1 else None
    result = run_experiment(
        args.dataset, config=config, registry=registry, seed=args.seed, parallel=parallel
    )
    write_records_csv(args.output, result.records)
    print(f"wrote {len(result.records)} records to {args.output}")
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    registry = default_registry(gaussian_shape=(args.size, args.size))
    parallel = ParallelConfig(workers=args.workers) if args.workers > 1 else None
    driver = _FIGURES[args.number]
    output = driver(registry=registry, seed=args.seed, parallel=parallel)
    for panel, series_list in output.items():
        title = f"Figure {args.number} — {panel}"
        if args.markdown:
            print(series_to_markdown(series_list, title=title))
            print()
            continue
        print(f"\n=== {title} ===")
        rows = []
        for series in sorted(series_list, key=lambda s: (s.compressor, s.error_bound)):
            if series.fit is None:
                rows.append((series.compressor, f"{series.error_bound:g}", "-", "-", "-", series.n_points))
            else:
                rows.append(
                    (
                        series.compressor,
                        f"{series.error_bound:g}",
                        series.fit.alpha,
                        series.fit.beta,
                        series.fit.r_squared,
                        series.fit.n_points,
                    )
                )
        print(format_table(("compressor", "bound", "alpha", "beta", "R^2", "points"), rows))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script."""

    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handlers = {
        "compress": _command_compress,
        "stats": _command_stats,
        "experiment": _command_experiment,
        "figure": _command_figure,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
