"""Reconstruction-quality analysis vs. correlation structure (extension).

The paper's future-work list includes investigating "the effects of
correlation structures on quality metrics of reconstructed data such as
PSNR".  This module implements that analysis with the same machinery used
for the compression-ratio figures:

* :func:`quality_series_from_result` groups experiment records into
  (compressor, bound) series of a *quality* metric (PSNR, RMSE, bit rate)
  against a correlation statistic, fitting the same logarithmic model;
* :func:`rate_distortion_table` summarises the bit-rate / PSNR trade-off
  per compressor across the sweep — the rate-distortion view that
  complements the CR-only analysis of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.figures import STATISTIC_KEYS, FigureSeries
from repro.core.pipeline import ExperimentResult
from repro.core.regression import LogRegressionFit, fit_log_regression

__all__ = ["QUALITY_METRICS", "quality_series_from_result", "rate_distortion_table"]

#: Metrics of :class:`repro.pressio.metrics.CompressionMetrics` that can be
#: analysed against the correlation statistics.
QUALITY_METRICS = ("psnr", "rmse", "bit_rate", "max_abs_error")


def quality_series_from_result(
    result: ExperimentResult,
    statistic: str,
    metric: str = "psnr",
    *,
    figure: str = "quality",
    compressors: Optional[Sequence[str]] = None,
) -> List[FigureSeries]:
    """Group records into series of a quality metric vs a correlation statistic.

    The returned :class:`repro.core.figures.FigureSeries` reuse the
    ``compression_ratios`` field to carry the metric values (the fitting and
    reporting machinery is metric-agnostic); the ``figure`` label records
    which metric was analysed.
    """

    if statistic not in STATISTIC_KEYS:
        raise ValueError(f"statistic must be one of {STATISTIC_KEYS}, got {statistic!r}")
    if metric not in QUALITY_METRICS:
        raise ValueError(f"metric must be one of {QUALITY_METRICS}, got {metric!r}")
    wanted = list(compressors) if compressors is not None else result.compressors
    series: List[FigureSeries] = []
    for compressor in wanted:
        for bound in result.error_bounds:
            records = result.filter(compressor=compressor, error_bound=bound)
            if not records:
                continue
            x = np.array([r.statistics.as_dict()[statistic] for r in records])
            values = np.array([getattr(r.metrics, metric) for r in records], dtype=np.float64)
            fit: Optional[LogRegressionFit]
            valid = np.isfinite(x) & np.isfinite(values) & (x > 0)
            try:
                fit = fit_log_regression(x[valid], values[valid]) if valid.sum() >= 2 else None
            except ValueError:
                fit = None
            series.append(
                FigureSeries(
                    figure=f"{figure}:{metric}",
                    dataset=result.dataset,
                    statistic=statistic,
                    compressor=compressor,
                    error_bound=bound,
                    x=x,
                    compression_ratios=values,
                    fit=fit,
                )
            )
    return series


@dataclass(frozen=True)
class RateDistortionPoint:
    """One (compressor, bound) cell of the rate-distortion table."""

    compressor: str
    error_bound: float
    mean_bit_rate: float
    mean_psnr: float
    mean_compression_ratio: float
    n_fields: int


def rate_distortion_table(result: ExperimentResult) -> Dict[str, List[RateDistortionPoint]]:
    """Average bit-rate / PSNR / CR per (compressor, bound) across the sweep.

    The per-compressor lists are ordered by increasing bit rate, so each is
    a rate-distortion curve: plotting ``mean_psnr`` against
    ``mean_bit_rate`` reproduces the classical R-D view of the same
    experiments the paper reports as CR only.
    """

    table: Dict[str, List[RateDistortionPoint]] = {}
    for compressor in result.compressors:
        points: List[RateDistortionPoint] = []
        for bound in result.error_bounds:
            records = result.filter(compressor=compressor, error_bound=bound)
            if not records:
                continue
            finite_psnr = [
                r.metrics.psnr for r in records if np.isfinite(r.metrics.psnr)
            ]
            points.append(
                RateDistortionPoint(
                    compressor=compressor,
                    error_bound=bound,
                    mean_bit_rate=float(np.mean([r.metrics.bit_rate for r in records])),
                    mean_psnr=float(np.mean(finite_psnr)) if finite_psnr else float("inf"),
                    mean_compression_ratio=float(
                        np.mean([r.compression_ratio for r in records])
                    ),
                    n_fields=len(records),
                )
            )
        points.sort(key=lambda p: p.mean_bit_rate)
        table[compressor] = points
    return table
