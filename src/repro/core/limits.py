"""Compressibility-plateau (limit) estimation.

The paper observes that the CR-vs-variogram-range relationship "exhibits a
plateau for highly correlated data (large variogram ranges) suggesting a
limit in compressibility of the data for a given error bound and
compressor".  This module quantifies that observation: given a series of
(range, CR) points it estimates where the curve flattens and what CR level
it saturates at, by comparing the local slope of the (log-x) curve against
a fraction of its initial slope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["PlateauEstimate", "estimate_compressibility_plateau"]


@dataclass(frozen=True)
class PlateauEstimate:
    """Estimated saturation of a CR-vs-statistic curve.

    Attributes
    ----------
    plateau_cr:
        Estimated compression-ratio ceiling (mean CR over the plateau
        region); NaN when no plateau is detected within the data range.
    onset_x:
        Statistic value at which the plateau starts; NaN when not detected.
    detected:
        Whether a plateau was found inside the observed range.
    initial_slope / final_slope:
        Slopes of CR against log(x) over the first and last thirds of the
        curve — the diagnostic used for detection.
    """

    plateau_cr: float
    onset_x: float
    detected: bool
    initial_slope: float
    final_slope: float


def estimate_compressibility_plateau(
    x: Sequence[float],
    compression_ratios: Sequence[float],
    *,
    flatness_fraction: float = 0.25,
    min_points: int = 6,
) -> PlateauEstimate:
    """Detect a plateau in a CR-vs-statistic curve.

    Parameters
    ----------
    x:
        Correlation statistic values (must be positive; the curve is
        analysed against log(x)).
    compression_ratios:
        Corresponding CR values.
    flatness_fraction:
        The plateau is declared where the local slope drops below this
        fraction of the initial slope.
    min_points:
        Minimum number of points required for a meaningful estimate.
    """

    x_arr = np.asarray(x, dtype=np.float64).ravel()
    cr_arr = np.asarray(compression_ratios, dtype=np.float64).ravel()
    if x_arr.shape != cr_arr.shape:
        raise ValueError("x and compression_ratios must have the same length")
    if not 0 < flatness_fraction < 1:
        raise ValueError("flatness_fraction must be in (0, 1)")
    mask = np.isfinite(x_arr) & np.isfinite(cr_arr) & (x_arr > 0)
    x_arr, cr_arr = x_arr[mask], cr_arr[mask]
    if x_arr.size < max(min_points, 4):
        return PlateauEstimate(
            plateau_cr=float("nan"),
            onset_x=float("nan"),
            detected=False,
            initial_slope=float("nan"),
            final_slope=float("nan"),
        )

    order = np.argsort(x_arr)
    x_sorted = x_arr[order]
    cr_sorted = cr_arr[order]
    log_x = np.log(x_sorted)

    third = max(2, x_sorted.size // 3)
    initial_slope = float(np.polyfit(log_x[:third], cr_sorted[:third], 1)[0])
    final_slope = float(np.polyfit(log_x[-third:], cr_sorted[-third:], 1)[0])

    detected = False
    onset_x = float("nan")
    plateau_cr = float("nan")
    if initial_slope > 0 and final_slope < flatness_fraction * initial_slope:
        detected = True
        # Onset: first index (scanning from the right) where the running
        # local slope falls below the threshold.
        threshold = flatness_fraction * initial_slope
        onset_index = x_sorted.size - third
        for start in range(x_sorted.size - third, 0, -1):
            window_slope = float(
                np.polyfit(log_x[start : start + third], cr_sorted[start : start + third], 1)[0]
            )
            if window_slope >= threshold:
                onset_index = min(start + third, x_sorted.size - 1)
                break
            onset_index = start
        onset_x = float(x_sorted[onset_index])
        plateau_cr = float(cr_sorted[onset_index:].mean())

    return PlateauEstimate(
        plateau_cr=plateau_cr,
        onset_x=onset_x,
        detected=detected,
        initial_slope=initial_slope,
        final_slope=final_slope,
    )
