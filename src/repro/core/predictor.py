"""Compression-ratio prediction from correlation statistics (extension).

The paper's future-work item (iii) asks for "a model of compression ratio
based on correlation metrics and error bound".  This module implements a
simple, transparent version of that model: per compressor, an ordinary
least-squares linear model on engineered features

* ``log(statistic)`` for each available correlation statistic,
* ``log10(error_bound)``,
* an intercept,

trained on :class:`repro.core.experiment.CompressionRecord` lists produced
by the pipeline.  It is intentionally *not* a deep model (the related-work
section of the paper criticises the generalisation of black-box DNN
estimators); the point is to quantify how much of the CR variance the
correlation statistics explain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.experiment import CompressionRecord

__all__ = ["CompressionRatioPredictor", "PredictorReport"]

#: Features available for the regression design matrix.
FEATURE_NAMES = (
    "log_global_variogram_range",
    "log_std_local_variogram_range",
    "log_std_local_svd_truncation",
    "log10_error_bound",
)


@dataclass(frozen=True)
class PredictorReport:
    """Goodness-of-fit report of a trained predictor (per compressor)."""

    compressor: str
    n_samples: int
    r_squared: float
    mean_absolute_error: float
    median_relative_error: float
    coefficients: Dict[str, float]


class CompressionRatioPredictor:
    """Linear CR model on correlation statistics and the error bound.

    Parameters
    ----------
    features:
        Subset of :data:`FEATURE_NAMES` to use; the default uses every
        feature that is finite in the training records.
    """

    def __init__(self, features: Optional[Sequence[str]] = None) -> None:
        if features is not None:
            unknown = set(features) - set(FEATURE_NAMES)
            if unknown:
                raise ValueError(f"unknown features: {sorted(unknown)}")
            self.features: Tuple[str, ...] = tuple(features)
        else:
            self.features = FEATURE_NAMES
        self._models: Dict[str, np.ndarray] = {}
        self._feature_masks: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _raw_features(record: CompressionRecord) -> Dict[str, float]:
        stats = record.statistics
        return {
            "log_global_variogram_range": _safe_log(stats.global_variogram_range),
            "log_std_local_variogram_range": _safe_log(stats.std_local_variogram_range),
            "log_std_local_svd_truncation": _safe_log(stats.std_local_svd_truncation),
            "log10_error_bound": float(np.log10(record.error_bound)),
        }

    def _design_matrix(
        self, records: Sequence[CompressionRecord], feature_mask: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        raw = np.array(
            [[self._raw_features(r)[name] for name in self.features] for r in records],
            dtype=np.float64,
        )
        if feature_mask is None:
            feature_mask = np.all(np.isfinite(raw), axis=0)
            if not feature_mask.any():
                raise ValueError(
                    "no usable features: all candidate statistics are NaN in the records"
                )
        columns = raw[:, feature_mask]
        design = np.column_stack([np.ones(len(records)), columns])
        return design, feature_mask

    # ------------------------------------------------------------------
    def fit(self, records: Iterable[CompressionRecord]) -> List[PredictorReport]:
        """Fit one linear model per compressor present in the records."""

        records = list(records)
        if not records:
            raise ValueError("cannot fit on an empty record list")
        reports: List[PredictorReport] = []
        for compressor in sorted({r.compressor for r in records}):
            subset = [r for r in records if r.compressor == compressor]
            cr = np.array([r.compression_ratio for r in subset], dtype=np.float64)
            finite = np.isfinite(cr)
            subset = [r for r, ok in zip(subset, finite) if ok]
            cr = cr[finite]
            if len(subset) < 3:
                raise ValueError(
                    f"need at least 3 finite records for compressor {compressor!r}"
                )
            design, mask = self._design_matrix(subset)
            coeffs, _, _, _ = np.linalg.lstsq(design, cr, rcond=None)
            self._models[compressor] = coeffs
            self._feature_masks[compressor] = mask

            predicted = design @ coeffs
            residuals = cr - predicted
            ss_res = float(np.sum(residuals**2))
            ss_tot = float(np.sum((cr - cr.mean()) ** 2))
            r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
            mae = float(np.mean(np.abs(residuals)))
            rel = np.abs(residuals) / np.maximum(np.abs(cr), 1e-12)
            named = dict(
                zip(
                    ["intercept"] + [f for f, keep in zip(self.features, mask) if keep],
                    coeffs.tolist(),
                )
            )
            reports.append(
                PredictorReport(
                    compressor=compressor,
                    n_samples=len(subset),
                    r_squared=r_squared,
                    mean_absolute_error=mae,
                    median_relative_error=float(np.median(rel)),
                    coefficients=named,
                )
            )
        return reports

    def predict(self, records: Iterable[CompressionRecord]) -> np.ndarray:
        """Predict CR for records of already-fitted compressors."""

        records = list(records)
        out = np.empty(len(records), dtype=np.float64)
        for i, record in enumerate(records):
            if record.compressor not in self._models:
                raise KeyError(f"no model fitted for compressor {record.compressor!r}")
            mask = self._feature_masks[record.compressor]
            design, _ = self._design_matrix([record], feature_mask=mask)
            out[i] = float((design @ self._models[record.compressor])[0])
        return out

    @property
    def fitted_compressors(self) -> List[str]:
        return sorted(self._models)


def _safe_log(value: float) -> float:
    """Natural log returning NaN for non-positive or non-finite input."""

    if not np.isfinite(value) or value <= 0:
        return float("nan")
    return float(np.log(value))
