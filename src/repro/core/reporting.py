"""Export of experiment results to CSV and Markdown.

The analysis layer keeps results as plain records
(:class:`repro.core.experiment.CompressionRecord`) and figure series
(:class:`repro.core.figures.FigureSeries`); this module renders them into
the two formats people actually paste into papers and tickets:

* :func:`records_to_csv` / :func:`write_records_csv` — one row per
  (field, compressor, bound) observation, columns for every metric and
  correlation statistic.
* :func:`series_to_markdown` — a per-figure table in the style of the
  paper's legends (compressor, bound, alpha, beta, R^2).
* :func:`format_table` — minimal dependency-free column alignment used by
  both the examples and the benchmark harness.
"""

from __future__ import annotations

import csv
import io
import os
from typing import Iterable, List, Sequence, Union

from repro.core.experiment import CompressionRecord
from repro.core.figures import FigureSeries
from repro.core.pipeline import records_to_table

__all__ = [
    "records_to_csv",
    "write_records_csv",
    "series_to_markdown",
    "format_table",
]

PathLike = Union[str, os.PathLike]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table (no external dependencies).

    Numeric cells are formatted with ``repr``-free ``g`` formatting; all
    columns are right-aligned, which keeps numbers readable.
    """

    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(f"{cell:.4g}")
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).rjust(width) for cell, width in zip(cells, widths))

    lines = [render_line([str(h) for h in headers])]
    lines.append(render_line(["-" * width for width in widths]))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def records_to_csv(records: Iterable[CompressionRecord]) -> str:
    """Serialise records into a CSV string (header + one row per record)."""

    table = records_to_table(records)
    buffer = io.StringIO()
    if not table:
        return ""
    writer = csv.writer(buffer, lineterminator="\n")
    columns = list(table)
    writer.writerow(columns)
    n_rows = len(next(iter(table.values())))
    for i in range(n_rows):
        writer.writerow([table[column][i] for column in columns])
    return buffer.getvalue()


def write_records_csv(path: PathLike, records: Iterable[CompressionRecord]) -> None:
    """Write :func:`records_to_csv` output to ``path``."""

    content = records_to_csv(records)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(content)


def series_to_markdown(series_list: Iterable[FigureSeries], title: str = "") -> str:
    """Render figure series as a Markdown table (paper-legend style)."""

    lines: List[str] = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| compressor | error bound | alpha | beta | R^2 | residual std | points |")
    lines.append("|---|---|---|---|---|---|---|")
    for series in sorted(series_list, key=lambda s: (s.compressor, s.error_bound)):
        if series.fit is None:
            lines.append(
                f"| {series.compressor} | {series.error_bound:g} | — | — | — | — | {series.n_points} |"
            )
            continue
        fit = series.fit
        lines.append(
            f"| {series.compressor} | {series.error_bound:g} | {fit.alpha:.3g} | "
            f"{fit.beta:.3g} | {fit.r_squared:.3f} | {fit.residual_std:.3g} | {fit.n_points} |"
        )
    return "\n".join(lines)
