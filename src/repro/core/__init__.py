"""Core analysis layer: from fields to the paper's figures.

* :mod:`repro.core.regression` -- the logarithmic regression
  ``CR = alpha + beta * log(statistic)`` the paper fits to every
  (compressor, error bound) series, plus goodness-of-fit summaries.
* :mod:`repro.core.experiment` -- the record types and the single-field
  measurement step (correlation statistics + compression ratios).
* :mod:`repro.core.pipeline` -- sweeps over datasets x compressors x error
  bounds, optionally in parallel, producing tidy tables of records.
* :mod:`repro.core.figures` -- one driver per paper figure (3-7) returning
  the plotted series and fitted coefficients.
* :mod:`repro.core.limits` -- plateau / compressibility-limit detection on
  CR-vs-range curves (the paper's observation that CR saturates for highly
  correlated fields).
* :mod:`repro.core.predictor` -- the future-work extension: predict CR from
  correlation statistics and the error bound.
"""

from repro.core.regression import LogRegressionFit, fit_log_regression
from repro.core.experiment import (
    CompressionRecord,
    CorrelationStatistics,
    ExperimentConfig,
    measure_field,
    measure_statistics,
)
from repro.core.pipeline import ExperimentResult, run_experiment, records_to_table
from repro.core.figures import (
    FigureSeries,
    figure1_variogram_anatomy,
    figure2_dataset_gallery,
    figure3_global_range_gaussian,
    figure4_global_range_miranda,
    figure5_local_range_gaussian,
    figure6_local_svd_gaussian,
    figure7_local_stats_miranda,
)
from repro.core.limits import PlateauEstimate, estimate_compressibility_plateau
from repro.core.predictor import CompressionRatioPredictor, PredictorReport
from repro.core.reporting import (
    format_table,
    records_to_csv,
    series_to_markdown,
    write_records_csv,
)
from repro.core.quality import (
    QUALITY_METRICS,
    quality_series_from_result,
    rate_distortion_table,
)

__all__ = [
    "LogRegressionFit",
    "fit_log_regression",
    "CompressionRecord",
    "CorrelationStatistics",
    "ExperimentConfig",
    "measure_field",
    "measure_statistics",
    "ExperimentResult",
    "run_experiment",
    "records_to_table",
    "FigureSeries",
    "figure1_variogram_anatomy",
    "figure2_dataset_gallery",
    "figure3_global_range_gaussian",
    "figure4_global_range_miranda",
    "figure5_local_range_gaussian",
    "figure6_local_svd_gaussian",
    "figure7_local_stats_miranda",
    "PlateauEstimate",
    "estimate_compressibility_plateau",
    "CompressionRatioPredictor",
    "PredictorReport",
    "format_table",
    "records_to_csv",
    "write_records_csv",
    "series_to_markdown",
    "QUALITY_METRICS",
    "quality_series_from_result",
    "rate_distortion_table",
]
