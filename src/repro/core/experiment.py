"""Single-field measurement step and the experiment record types.

One *record* is the paper's atomic observation: a field (dataset label),
one compressor, one error bound, the resulting compression ratio, plus the
correlation statistics of the field.  The pipeline
(:mod:`repro.core.pipeline`) assembles many records into tables; the figure
drivers (:mod:`repro.core.figures`) slice and fit them.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.pressio.api import compress_and_measure
from repro.pressio.metrics import CompressionMetrics
from repro.stats.local import std_local_variogram_range
from repro.stats.svd import std_local_svd_truncation
from repro.stats.variogram_models import estimate_variogram_range
from repro.utils.validation import ensure_2d

__all__ = [
    "ExperimentConfig",
    "CorrelationStatistics",
    "CompressionRecord",
    "measure_statistics",
    "measure_field",
]

#: The error bounds the paper sweeps for every compressor.
PAPER_ERROR_BOUNDS: Tuple[float, ...] = (1e-5, 1e-4, 1e-3, 1e-2)
#: The compressors the paper evaluates.
PAPER_COMPRESSORS: Tuple[str, ...] = ("sz", "zfp", "mgard")


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of one experiment sweep.

    Attributes
    ----------
    compressors:
        Compressor names (registry keys).
    error_bounds:
        Absolute error bounds (the paper sweeps 1e-5 ... 1e-2).
    window:
        Window size H for the local statistics (32 in the paper).
    svd_energy:
        Variance fraction for the local SVD truncation level (0.99).
    compute_local_variogram / compute_local_svd / compute_global_range:
        Toggles for the (comparatively expensive) statistics; figure
        drivers enable only what they need.
    compressor_options:
        Extra keyword arguments per compressor name, forwarded to the
        factory (e.g. ``{"sz": {"predictors": ("lorenzo",)}}`` for the
        predictor ablation).
    """

    compressors: Tuple[str, ...] = PAPER_COMPRESSORS
    error_bounds: Tuple[float, ...] = PAPER_ERROR_BOUNDS
    window: int = 32
    svd_energy: float = 0.99
    compute_global_range: bool = True
    compute_local_variogram: bool = True
    compute_local_svd: bool = True
    compressor_options: Dict[str, Dict] = dataclass_field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.compressors:
            raise ValueError("at least one compressor is required")
        if not self.error_bounds:
            raise ValueError("at least one error bound is required")
        if any(b <= 0 for b in self.error_bounds):
            raise ValueError("error bounds must be positive")
        if self.window < 4:
            raise ValueError("window must be >= 4")
        if not 0 < self.svd_energy <= 1:
            raise ValueError("svd_energy must be in (0, 1]")


@dataclass(frozen=True)
class CorrelationStatistics:
    """Correlation statistics of one field (the x-axes of the figures).

    ``nan`` marks statistics that were not requested or could not be
    estimated for the field.
    """

    global_variogram_range: float = float("nan")
    std_local_variogram_range: float = float("nan")
    std_local_svd_truncation: float = float("nan")
    field_variance: float = float("nan")
    field_mean: float = float("nan")

    def as_dict(self) -> Dict[str, float]:
        return {
            "global_variogram_range": self.global_variogram_range,
            "std_local_variogram_range": self.std_local_variogram_range,
            "std_local_svd_truncation": self.std_local_svd_truncation,
            "field_variance": self.field_variance,
            "field_mean": self.field_mean,
        }


@dataclass(frozen=True)
class CompressionRecord:
    """One (field, compressor, error bound) observation."""

    dataset: str
    field_label: str
    compressor: str
    error_bound: float
    compression_ratio: float
    metrics: CompressionMetrics
    statistics: CorrelationStatistics

    def as_dict(self) -> Dict[str, float]:
        """Flatten the record into a plain dictionary (one table row)."""

        row: Dict[str, float] = {
            "dataset": self.dataset,
            "field_label": self.field_label,
            "compressor": self.compressor,
            "error_bound": self.error_bound,
            "compression_ratio": self.compression_ratio,
        }
        row.update({f"metric_{k}": v for k, v in self.metrics.as_dict().items()})
        row.update(self.statistics.as_dict())
        return row


def measure_statistics(
    field: np.ndarray, config: ExperimentConfig | None = None
) -> CorrelationStatistics:
    """Compute the requested correlation statistics of one field."""

    field = ensure_2d(field, "field")
    config = config or ExperimentConfig()

    global_range = float("nan")
    if config.compute_global_range:
        global_range = estimate_variogram_range(field)

    std_local_range = float("nan")
    if config.compute_local_variogram and min(field.shape) >= config.window:
        std_local_range = std_local_variogram_range(field, config.window)

    std_local_svd = float("nan")
    if config.compute_local_svd and min(field.shape) >= config.window:
        std_local_svd = std_local_svd_truncation(field, config.window, config.svd_energy)

    return CorrelationStatistics(
        global_variogram_range=global_range,
        std_local_variogram_range=std_local_range,
        std_local_svd_truncation=std_local_svd,
        field_variance=float(np.var(field)),
        field_mean=float(np.mean(field)),
    )


def measure_field(
    field: np.ndarray,
    *,
    dataset: str,
    field_label: str,
    config: ExperimentConfig | None = None,
    statistics: Optional[CorrelationStatistics] = None,
) -> List[CompressionRecord]:
    """Compress one field with every (compressor, bound) pair in the config.

    The correlation statistics are computed once per field (they do not
    depend on the compressor) and shared across the records.
    """

    field = ensure_2d(field, "field")
    config = config or ExperimentConfig()
    if statistics is None:
        statistics = measure_statistics(field, config)

    records: List[CompressionRecord] = []
    for compressor_name in config.compressors:
        extra = config.compressor_options.get(compressor_name, {})
        for bound in config.error_bounds:
            compressed, metrics = compress_and_measure(
                field, compressor_name, bound, **extra
            )
            records.append(
                CompressionRecord(
                    dataset=dataset,
                    field_label=field_label,
                    compressor=compressor_name,
                    error_bound=bound,
                    compression_ratio=metrics.compression_ratio,
                    metrics=metrics,
                    statistics=statistics,
                )
            )
    return records
