"""Per-figure experiment drivers.

Each ``figureN_*`` function reproduces the computation behind one figure of
the paper and returns the plotted series (x values, compression ratios and
the fitted logarithmic regression per compressor / error bound), so the
benchmark harness and the examples can print exactly the rows the paper
plots.  No plotting is performed here — the output is plain data.

Figure map (see DESIGN.md for the full experiment index):

* Figure 1 — anatomy of a variogram (nugget / sill / range).
* Figure 2 — gallery of the datasets (summary statistics per field).
* Figure 3 — CR vs *global* variogram range, single- and multi-range
  Gaussian fields.
* Figure 4 — CR vs global variogram range, Miranda slices.
* Figure 5 — CR vs std of *local* variogram range (H=32), Gaussian fields.
* Figure 6 — CR vs std of local SVD truncation level, Gaussian fields
  (SZ and ZFP only, as in the paper).
* Figure 7 — Miranda: CR vs both local statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.experiment import ExperimentConfig
from repro.core.pipeline import ExperimentResult, run_experiment
from repro.core.regression import LogRegressionFit, fit_log_regression
from repro.datasets.gaussian import generate_gaussian_field
from repro.datasets.registry import DatasetRegistry, default_registry
from repro.stats.variogram import VariogramConfig, empirical_variogram
from repro.stats.variogram_models import fit_variogram
from repro.utils.parallel import ParallelConfig
from repro.utils.rng import SeedLike

__all__ = [
    "FigureSeries",
    "series_from_result",
    "figure1_variogram_anatomy",
    "figure2_dataset_gallery",
    "figure3_global_range_gaussian",
    "figure4_global_range_miranda",
    "figure5_local_range_gaussian",
    "figure6_local_svd_gaussian",
    "figure7_local_stats_miranda",
]

#: Statistic keys accepted by :func:`series_from_result`.
STATISTIC_KEYS = (
    "global_variogram_range",
    "std_local_variogram_range",
    "std_local_svd_truncation",
)


@dataclass(frozen=True)
class FigureSeries:
    """One plotted curve: a compressor at one error bound on one dataset."""

    figure: str
    dataset: str
    statistic: str
    compressor: str
    error_bound: float
    x: np.ndarray
    compression_ratios: np.ndarray
    fit: Optional[LogRegressionFit]

    @property
    def n_points(self) -> int:
        return int(self.x.size)

    def legend_label(self) -> str:
        """Legend string in the paper's style (bound + fitted coefficients)."""

        if self.fit is None:
            return f"{self.compressor} eb={self.error_bound:g} (no fit)"
        return (
            f"{self.compressor} eb={self.error_bound:g}: "
            f"alpha={self.fit.alpha:.3g}, beta={self.fit.beta:.3g}"
        )


def series_from_result(
    result: ExperimentResult,
    statistic: str,
    *,
    figure: str,
    compressors: Optional[Sequence[str]] = None,
    max_error_bound: Optional[float] = None,
) -> List[FigureSeries]:
    """Group experiment records into per-(compressor, bound) figure series.

    ``max_error_bound`` reproduces the paper's trick of restricting SZ's
    Miranda panels to bounds strictly below 1e-2 "to ease the reading".
    """

    if statistic not in STATISTIC_KEYS:
        raise ValueError(f"statistic must be one of {STATISTIC_KEYS}, got {statistic!r}")
    wanted = list(compressors) if compressors is not None else result.compressors
    series: List[FigureSeries] = []
    for compressor in wanted:
        for bound in result.error_bounds:
            if max_error_bound is not None and bound >= max_error_bound:
                continue
            records = result.filter(compressor=compressor, error_bound=bound)
            if not records:
                continue
            x = np.array([r.statistics.as_dict()[statistic] for r in records])
            cr = np.array([r.compression_ratio for r in records])
            fit: Optional[LogRegressionFit]
            valid = np.isfinite(x) & np.isfinite(cr) & (x > 0)
            try:
                fit = fit_log_regression(x[valid], cr[valid]) if valid.sum() >= 2 else None
            except ValueError:
                fit = None
            series.append(
                FigureSeries(
                    figure=figure,
                    dataset=result.dataset,
                    statistic=statistic,
                    compressor=compressor,
                    error_bound=bound,
                    x=x,
                    compression_ratios=cr,
                    fit=fit,
                )
            )
    return series


# ----------------------------------------------------------------------
# Figure 1 and 2: illustrative figures
# ----------------------------------------------------------------------
def figure1_variogram_anatomy(
    *,
    shape: Tuple[int, int] = (128, 128),
    correlation_range: float = 16.0,
    seed: SeedLike = 0,
) -> Dict[str, object]:
    """Empirical variogram of one Gaussian field plus the fitted parameters.

    Reproduces the content of the paper's Figure 1: a variogram curve
    annotated with nugget, sill and range.
    """

    field = generate_gaussian_field(shape, correlation_range, seed=seed)
    variogram = empirical_variogram(field, VariogramConfig())
    fitted = fit_variogram(variogram, model="gaussian", fit_nugget=True)
    return {
        "lags": variogram.lags,
        "semivariance": variogram.values,
        "pair_counts": variogram.pair_counts,
        "fitted": fitted,
        "true_range": correlation_range,
        "field_variance": variogram.field_variance,
    }


def figure2_dataset_gallery(
    *,
    registry: Optional[DatasetRegistry] = None,
    seed: SeedLike = 0,
) -> Dict[str, List[Dict[str, float]]]:
    """Summary statistics of every field in each of the paper's datasets.

    The original Figure 2 shows the fields as images; without plotting we
    report per-field summaries (shape, min/max/mean/std) demonstrating the
    datasets were generated and cover distinct correlation regimes.
    """

    registry = registry or default_registry()
    gallery: Dict[str, List[Dict[str, float]]] = {}
    for name in registry.names():
        fields = registry.create(name, seed=seed)
        # Figure 2 shows 2D imagery; volume workloads (3D fields, e.g.
        # "miranda-volume") belong to the volumes pipeline, not the gallery.
        entries = [
            {
                "label": label,
                "rows": field.shape[0],
                "cols": field.shape[1],
                "min": float(field.min()),
                "max": float(field.max()),
                "mean": float(field.mean()),
                "std": float(field.std()),
            }
            for label, field in fields
            if np.asarray(field).ndim == 2
        ]
        if entries:
            gallery[name] = entries
    return gallery


# ----------------------------------------------------------------------
# Figures 3-7: quantitative results
# ----------------------------------------------------------------------
def _gaussian_pair_results(
    config: ExperimentConfig,
    registry: Optional[DatasetRegistry],
    seed: SeedLike,
    parallel: Optional[ParallelConfig],
) -> Tuple[ExperimentResult, ExperimentResult]:
    registry = registry or default_registry()
    single = run_experiment(
        "gaussian-single", config=config, registry=registry, seed=seed, parallel=parallel
    )
    multi = run_experiment(
        "gaussian-multi", config=config, registry=registry, seed=seed, parallel=parallel
    )
    return single, multi


def figure3_global_range_gaussian(
    *,
    config: Optional[ExperimentConfig] = None,
    registry: Optional[DatasetRegistry] = None,
    seed: SeedLike = 0,
    parallel: Optional[ParallelConfig] = None,
    results: Optional[Tuple[ExperimentResult, ExperimentResult]] = None,
) -> Dict[str, List[FigureSeries]]:
    """Figure 3: CR vs estimated global variogram range on Gaussian fields.

    Returns ``{"single": [...], "multi": [...]}`` — the left and right
    columns of the paper's figure.
    """

    config = config or ExperimentConfig(compute_local_variogram=False, compute_local_svd=False)
    if results is None:
        results = _gaussian_pair_results(config, registry, seed, parallel)
    single, multi = results
    return {
        "single": series_from_result(single, "global_variogram_range", figure="figure3"),
        "multi": series_from_result(multi, "global_variogram_range", figure="figure3"),
    }


def figure4_global_range_miranda(
    *,
    config: Optional[ExperimentConfig] = None,
    registry: Optional[DatasetRegistry] = None,
    seed: SeedLike = 0,
    parallel: Optional[ParallelConfig] = None,
    result: Optional[ExperimentResult] = None,
) -> Dict[str, List[FigureSeries]]:
    """Figure 4: CR vs global variogram range for Miranda velocityx slices.

    ``"all"`` holds every bound; ``"sz_restricted"`` reproduces the paper's
    right-hand SZ panel limited to bounds strictly below 1e-2.
    """

    config = config or ExperimentConfig(compute_local_variogram=False, compute_local_svd=False)
    if result is None:
        result = run_experiment(
            "miranda", config=config, registry=registry, seed=seed, parallel=parallel
        )
    return {
        "all": series_from_result(result, "global_variogram_range", figure="figure4"),
        "sz_restricted": series_from_result(
            result,
            "global_variogram_range",
            figure="figure4",
            compressors=["sz"],
            max_error_bound=1e-2,
        ),
    }


def figure5_local_range_gaussian(
    *,
    config: Optional[ExperimentConfig] = None,
    registry: Optional[DatasetRegistry] = None,
    seed: SeedLike = 0,
    parallel: Optional[ParallelConfig] = None,
    results: Optional[Tuple[ExperimentResult, ExperimentResult]] = None,
) -> Dict[str, List[FigureSeries]]:
    """Figure 5: CR vs std of the local variogram range (H=32), Gaussian fields."""

    config = config or ExperimentConfig(compute_global_range=False, compute_local_svd=False)
    if results is None:
        results = _gaussian_pair_results(config, registry, seed, parallel)
    single, multi = results
    return {
        "single": series_from_result(single, "std_local_variogram_range", figure="figure5"),
        "multi": series_from_result(multi, "std_local_variogram_range", figure="figure5"),
    }


def figure6_local_svd_gaussian(
    *,
    config: Optional[ExperimentConfig] = None,
    registry: Optional[DatasetRegistry] = None,
    seed: SeedLike = 0,
    parallel: Optional[ParallelConfig] = None,
    results: Optional[Tuple[ExperimentResult, ExperimentResult]] = None,
) -> Dict[str, List[FigureSeries]]:
    """Figure 6: CR vs std of local SVD truncation level, Gaussian fields.

    As in the paper, MGARD is omitted (it showed little sensitivity to the
    correlation statistics).
    """

    config = config or ExperimentConfig(
        compressors=("sz", "zfp"), compute_global_range=False, compute_local_variogram=False
    )
    if results is None:
        results = _gaussian_pair_results(config, registry, seed, parallel)
    single, multi = results
    return {
        "single": series_from_result(
            single, "std_local_svd_truncation", figure="figure6", compressors=["sz", "zfp"]
        ),
        "multi": series_from_result(
            multi, "std_local_svd_truncation", figure="figure6", compressors=["sz", "zfp"]
        ),
    }


def figure7_local_stats_miranda(
    *,
    config: Optional[ExperimentConfig] = None,
    registry: Optional[DatasetRegistry] = None,
    seed: SeedLike = 0,
    parallel: Optional[ParallelConfig] = None,
    result: Optional[ExperimentResult] = None,
) -> Dict[str, List[FigureSeries]]:
    """Figure 7: Miranda CR vs both local statistics.

    Keys: ``"local_variogram"`` (left column), ``"local_svd"`` (right
    column) and ``"sz_restricted_*"`` for the SZ panels limited to bounds
    below 1e-2 (the paper's readability restriction).
    """

    config = config or ExperimentConfig(compute_global_range=False)
    if result is None:
        result = run_experiment(
            "miranda", config=config, registry=registry, seed=seed, parallel=parallel
        )
    return {
        "local_variogram": series_from_result(
            result, "std_local_variogram_range", figure="figure7"
        ),
        "local_svd": series_from_result(result, "std_local_svd_truncation", figure="figure7"),
        "sz_restricted_local_variogram": series_from_result(
            result,
            "std_local_variogram_range",
            figure="figure7",
            compressors=["sz"],
            max_error_bound=1e-2,
        ),
        "sz_restricted_local_svd": series_from_result(
            result,
            "std_local_svd_truncation",
            figure="figure7",
            compressors=["sz"],
            max_error_bound=1e-2,
        ),
    }
