"""Logarithmic regression of compression ratios on correlation statistics.

The paper quantifies every relationship with the model

.. math::

    CR = \\alpha + \\beta \\log(a) + \\epsilon

where ``a`` is the correlation statistic on the x-axis (global variogram
range, std of local ranges, std of local SVD truncation levels) and the
estimated coefficients :math:`\\alpha, \\beta` are reported in every figure
legend.  The fit is ordinary least squares on ``log(a)`` — the paper uses
NumPy's ``polyfit`` for the same purpose.

:class:`LogRegressionFit` also carries goodness-of-fit summaries (R^2,
residual standard deviation) used by the benchmarks to check the paper's
qualitative claims (e.g. single-range Gaussian fields fit better than
multi-range ones; smaller error bounds show less dispersion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["LogRegressionFit", "fit_log_regression"]


@dataclass(frozen=True)
class LogRegressionFit:
    """Fitted logarithmic regression ``CR = alpha + beta * log(x)``.

    Attributes
    ----------
    alpha, beta:
        Estimated intercept and slope (the legend values in the paper's
        figures).
    r_squared:
        Coefficient of determination of the fit.
    residual_std:
        Standard deviation of the residuals (the "dispersion around the
        fitted curve" the paper discusses per error bound).
    n_points:
        Number of (x, CR) pairs used.
    log_base:
        Base of the logarithm (natural log by default, matching the model
        as written in the paper).
    """

    alpha: float
    beta: float
    r_squared: float
    residual_std: float
    n_points: int
    log_base: float = float(np.e)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted CR at the given statistic values."""

        x = np.asarray(x, dtype=np.float64)
        return self.alpha + self.beta * (np.log(x) / np.log(self.log_base))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CR = {self.alpha:.3g} + {self.beta:.3g}*log(x)  "
            f"(R^2={self.r_squared:.3f}, n={self.n_points})"
        )


def fit_log_regression(
    x: Sequence[float],
    cr: Sequence[float],
    *,
    log_base: float = np.e,
    weights: Optional[Sequence[float]] = None,
) -> LogRegressionFit:
    """Least-squares fit of ``CR = alpha + beta * log(x)``.

    Parameters
    ----------
    x:
        Correlation statistic values (must be strictly positive; pairs with
        non-positive or non-finite entries are dropped, which mirrors how
        degenerate windows/fields are excluded in the study).
    cr:
        Compression ratios.
    log_base:
        Base of the logarithm (e for the paper's model; 10 or 2 are
        occasionally convenient for plotting).
    weights:
        Optional per-point weights for a weighted least-squares fit.
    """

    x_arr = np.asarray(x, dtype=np.float64).ravel()
    cr_arr = np.asarray(cr, dtype=np.float64).ravel()
    if x_arr.shape != cr_arr.shape:
        raise ValueError(f"x and cr must have equal length, got {x_arr.size} and {cr_arr.size}")
    if log_base <= 0 or log_base == 1.0:
        raise ValueError("log_base must be positive and != 1")

    mask = np.isfinite(x_arr) & np.isfinite(cr_arr) & (x_arr > 0)
    if weights is not None:
        w_arr = np.asarray(weights, dtype=np.float64).ravel()
        if w_arr.shape != x_arr.shape:
            raise ValueError("weights must have the same length as x")
        mask &= np.isfinite(w_arr) & (w_arr > 0)
    x_arr, cr_arr = x_arr[mask], cr_arr[mask]
    if weights is not None:
        w_arr = np.asarray(weights, dtype=np.float64).ravel()[mask]
    else:
        w_arr = np.ones_like(x_arr)
    if x_arr.size < 2:
        raise ValueError("need at least 2 valid (x, CR) pairs to fit a regression")

    log_x = np.log(x_arr) / np.log(log_base)
    design = np.column_stack([np.ones_like(log_x), log_x])
    sqrt_w = np.sqrt(w_arr)
    coeffs, _, _, _ = np.linalg.lstsq(design * sqrt_w[:, None], cr_arr * sqrt_w, rcond=None)
    alpha, beta = float(coeffs[0]), float(coeffs[1])

    predicted = alpha + beta * log_x
    residuals = cr_arr - predicted
    ss_res = float(np.sum(w_arr * residuals**2))
    weighted_mean = float(np.average(cr_arr, weights=w_arr))
    ss_tot = float(np.sum(w_arr * (cr_arr - weighted_mean) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    residual_std = float(np.sqrt(ss_res / w_arr.sum()))

    return LogRegressionFit(
        alpha=alpha,
        beta=beta,
        r_squared=r_squared,
        residual_std=residual_std,
        n_points=int(x_arr.size),
        log_base=float(log_base),
    )
