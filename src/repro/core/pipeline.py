"""Experiment sweeps over datasets, compressors and error bounds.

:func:`run_experiment` is the workhorse the figure drivers and benchmarks
use: it instantiates a named dataset from the registry (a list of labelled
2D fields), measures every field under every (compressor, bound) pair and
returns the flat list of :class:`repro.core.experiment.CompressionRecord`.
Field-level work is embarrassingly parallel and can be distributed over a
process pool via :class:`repro.utils.parallel.ParallelConfig`.

Repeated cells are memoized: several figure drivers sweep the same
(field, compressor, bound) combinations — e.g. the global-range and
local-statistics panels over one dataset realisation — so the per-field
measurement is cached in an :class:`ExperimentCache` keyed by the field's
content hash and the sweep configuration.  The default process-wide cache
can be bypassed per call (``cache=False``) or cleared with
:func:`clear_default_cache`.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.experiment import CompressionRecord, ExperimentConfig, measure_field
from repro.datasets.registry import DatasetRegistry, default_registry
from repro.obs.metrics import REGISTRY, publish_cache_counters
from repro.utils.parallel import ParallelConfig, parallel_map
from repro.utils.rng import SeedLike

__all__ = [
    "ExperimentCache",
    "ExperimentResult",
    "default_cache",
    "clear_default_cache",
    "memoized_map",
    "run_experiment",
    "run_experiment_on_fields",
    "records_to_table",
]


class ExperimentCache:
    """LRU memo of per-field measurement results.

    Keys combine the dataset name, field label, a SHA-1 of the field's raw
    bytes (plus ndim/shape/dtype) and the repr of the frozen
    :class:`~repro.core.experiment.ExperimentConfig`, so a hit is only
    possible for a byte-identical field measured under an identical sweep
    configuration.  Every key component is length-prefixed before hashing,
    which makes the key injective in its parts: two entries can only
    collide if every component matches, never because adjacent components
    happen to concatenate identically.  In particular a 2D field and a 3D
    volume with the same raw bytes (e.g. a ``(64, 64)`` plane and a
    ``(16, 16, 16)`` cube of zeros) always key differently.

    Values are the tuples of records produced by
    :func:`repro.core.experiment.measure_field` (frozen dataclasses, safe
    to share between callers).  ``hits`` / ``misses`` / ``evictions``
    count lookups that were served, lookups that were not, and entries
    dropped by the LRU bound; :meth:`counters` snapshots all three for the
    pipelines that report cache effectiveness.
    """

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[str, Tuple[CompressionRecord, ...]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(
        dataset: str, label: str, field: np.ndarray, config: ExperimentConfig
    ) -> str:
        field = np.ascontiguousarray(field)
        digest = hashlib.sha1()
        parts = (
            str(field.ndim),
            repr(field.shape),
            str(field.dtype),
            str(dataset),
            str(label),
            repr(config),
        )
        for part in parts:
            raw = part.encode()
            digest.update(len(raw).to_bytes(8, "little"))
            digest.update(raw)
        digest.update(field.nbytes.to_bytes(8, "little"))
        digest.update(field.tobytes())
        return digest.hexdigest()

    def get(self, key: str) -> Optional[Tuple[CompressionRecord, ...]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, records: Sequence[CompressionRecord]) -> None:
        self._entries[key] = tuple(records)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def counters(self) -> Dict[str, int]:
        """Snapshot of the hit/miss/eviction counters plus current size."""

        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)


def memoized_map(items, key_fn, compute_many, cache: Optional[ExperimentCache]):
    """Bulk map through an :class:`ExperimentCache`, with in-call dedup.

    The shared memoization protocol of the tiled volume pipeline and the
    chunked array store: every item is keyed (``key_fn(item) -> str``),
    served from ``cache`` on a hit, and computed otherwise —
    ``compute_many(pending_items)`` returns results aligned with its
    argument, so the caller decides how the batch runs (e.g. a process
    pool).  Items repeating a key *within the call* are computed once and
    resolved from the in-call owner, not the cache: LRU eviction may
    already have dropped the owner's entry when the call finishes.

    Returns ``(results, counters)``; ``counters`` is ``None`` when
    ``cache`` is ``None``, and the per-call hit/miss/eviction deltas plus
    the in-call duplicate count otherwise.  Cached values are wrapped in
    1-tuples.
    """

    if cache is None:
        fresh = compute_many(list(items))
        return list(fresh), None

    counters_before = cache.counters()
    keys = [key_fn(item) for item in items]
    results = [None] * len(keys)
    first_with_key: Dict[str, int] = {}
    duplicates: List[int] = []
    pending: List[int] = []
    for idx, key in enumerate(keys):
        if key in first_with_key:
            # An earlier item of this very call owns the key; the cache
            # cannot have it yet, so skip the (counted) lookup.
            duplicates.append(idx)
            continue
        hit = cache.get(key)
        if hit is not None:
            results[idx] = hit[0]
        else:
            first_with_key[key] = idx
            pending.append(idx)
    if pending:
        fresh = compute_many([items[idx] for idx in pending])
        for idx, value in zip(pending, fresh):
            results[idx] = value
            cache.put(keys[idx], (value,))
    for idx in duplicates:
        results[idx] = results[first_with_key[keys[idx]]]

    after = cache.counters()
    counters = {
        name: after[name] - counters_before[name]
        for name in ("hits", "misses", "evictions")
    }
    counters["in_call_duplicates"] = len(duplicates)
    return results, counters


_DEFAULT_CACHE = ExperimentCache()


def _publish_experiment_cache(registry) -> None:
    publish_cache_counters(registry, "experiment", _DEFAULT_CACHE.counters())


REGISTRY.register_collector(_publish_experiment_cache)


def default_cache() -> ExperimentCache:
    """The process-wide experiment cache used when no cache is passed."""

    return _DEFAULT_CACHE


def clear_default_cache() -> None:
    """Drop all entries (and counters) of the process-wide cache."""

    _DEFAULT_CACHE.clear()


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one sweep: the records plus the configuration used."""

    dataset: str
    config: ExperimentConfig
    records: Tuple[CompressionRecord, ...]

    def filter(
        self,
        *,
        compressor: Optional[str] = None,
        error_bound: Optional[float] = None,
    ) -> List[CompressionRecord]:
        """Records matching the given compressor and/or error bound."""

        out = list(self.records)
        if compressor is not None:
            out = [r for r in out if r.compressor == compressor]
        if error_bound is not None:
            out = [r for r in out if np.isclose(r.error_bound, error_bound)]
        return out

    @property
    def compressors(self) -> List[str]:
        return sorted({r.compressor for r in self.records})

    @property
    def error_bounds(self) -> List[float]:
        return sorted({r.error_bound for r in self.records})


def _measure_one(task) -> List[CompressionRecord]:
    """Top-level helper so the work item pickles for process pools.

    3D fields route through the tiled volume pipeline (native volumetric
    compression, 3D variogram statistic); 2D fields take the paper's
    per-slice measurement path.
    """

    dataset, label, field, config = task
    if np.asarray(field).ndim == 3:
        from repro.volumes.pipeline import measure_volume_field

        return measure_volume_field(
            field, dataset=dataset, field_label=label, config=config
        )
    return measure_field(field, dataset=dataset, field_label=label, config=config)


def run_experiment_on_fields(
    fields: Sequence[Tuple[str, np.ndarray]],
    *,
    dataset: str,
    config: ExperimentConfig | None = None,
    parallel: ParallelConfig | None = None,
    cache: Union[ExperimentCache, bool, None] = None,
) -> ExperimentResult:
    """Measure an explicit list of labelled fields.

    ``cache`` selects the memo for repeated (field, config) cells: ``None``
    (default) uses the process-wide cache, an :class:`ExperimentCache`
    instance uses that cache, and ``False`` disables memoization.
    """

    config = config or ExperimentConfig()
    if cache is None or cache is True:
        cache = _DEFAULT_CACHE
    elif cache is False:
        cache = None

    tasks = [(dataset, label, np.asarray(field), config) for label, field in fields]
    keys: List[Optional[str]] = [None] * len(tasks)
    groups: List[Optional[List[CompressionRecord]]] = [None] * len(tasks)
    pending: List[int] = []
    if cache is not None:
        for i, (_, label, field, _) in enumerate(tasks):
            keys[i] = ExperimentCache.key(dataset, label, field, config)
            hit = cache.get(keys[i])
            groups[i] = list(hit) if hit is not None else None
            if groups[i] is None:
                pending.append(i)
    else:
        pending = list(range(len(tasks)))

    if pending:
        fresh = parallel_map(_measure_one, [tasks[i] for i in pending], parallel)
        for i, group in zip(pending, fresh):
            groups[i] = group
            if cache is not None:
                cache.put(keys[i], group)

    records: List[CompressionRecord] = [record for group in groups for record in group]
    return ExperimentResult(dataset=dataset, config=config, records=tuple(records))


def run_experiment(
    dataset: str,
    *,
    config: ExperimentConfig | None = None,
    registry: DatasetRegistry | None = None,
    seed: SeedLike = 0,
    parallel: ParallelConfig | None = None,
    cache: Union[ExperimentCache, bool, None] = None,
) -> ExperimentResult:
    """Run a full sweep on a named dataset from the registry.

    Parameters
    ----------
    dataset:
        Registry key (``"gaussian-single"``, ``"gaussian-multi"``,
        ``"miranda"`` with the default registry).
    config:
        Sweep configuration (compressors, bounds, statistics toggles).
    registry:
        Dataset registry; defaults to :func:`repro.datasets.registry.default_registry`.
    seed:
        Seed used to instantiate the dataset (field realisations).
    parallel:
        Optional process-pool configuration for the per-field work.
    cache:
        Memo for repeated cells; see :func:`run_experiment_on_fields`.
    """

    registry = registry or default_registry()
    fields = registry.create(dataset, seed=seed)
    return run_experiment_on_fields(
        fields, dataset=dataset, config=config, parallel=parallel, cache=cache
    )


def records_to_table(records: Iterable[CompressionRecord]) -> Dict[str, list]:
    """Column-oriented table (dict of lists) from a list of records.

    The format is deliberately plain (no pandas dependency): keys are
    column names, values are aligned lists — easy to dump as CSV or to
    convert to any dataframe library the user prefers.
    """

    rows = [record.as_dict() for record in records]
    if not rows:
        return {}
    columns: Dict[str, list] = {key: [] for key in rows[0]}
    for row in rows:
        for key in columns:
            columns[key].append(row.get(key))
    return columns
