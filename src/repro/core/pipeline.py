"""Experiment sweeps over datasets, compressors and error bounds.

:func:`run_experiment` is the workhorse the figure drivers and benchmarks
use: it instantiates a named dataset from the registry (a list of labelled
2D fields), measures every field under every (compressor, bound) pair and
returns the flat list of :class:`repro.core.experiment.CompressionRecord`.
Field-level work is embarrassingly parallel and can be distributed over a
process pool via :class:`repro.utils.parallel.ParallelConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.experiment import CompressionRecord, ExperimentConfig, measure_field
from repro.datasets.registry import DatasetRegistry, default_registry
from repro.utils.parallel import ParallelConfig, parallel_map
from repro.utils.rng import SeedLike

__all__ = ["ExperimentResult", "run_experiment", "run_experiment_on_fields", "records_to_table"]


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one sweep: the records plus the configuration used."""

    dataset: str
    config: ExperimentConfig
    records: Tuple[CompressionRecord, ...]

    def filter(
        self,
        *,
        compressor: Optional[str] = None,
        error_bound: Optional[float] = None,
    ) -> List[CompressionRecord]:
        """Records matching the given compressor and/or error bound."""

        out = list(self.records)
        if compressor is not None:
            out = [r for r in out if r.compressor == compressor]
        if error_bound is not None:
            out = [r for r in out if np.isclose(r.error_bound, error_bound)]
        return out

    @property
    def compressors(self) -> List[str]:
        return sorted({r.compressor for r in self.records})

    @property
    def error_bounds(self) -> List[float]:
        return sorted({r.error_bound for r in self.records})


def _measure_one(task) -> List[CompressionRecord]:
    """Top-level helper so the work item pickles for process pools."""

    dataset, label, field, config = task
    return measure_field(field, dataset=dataset, field_label=label, config=config)


def run_experiment_on_fields(
    fields: Sequence[Tuple[str, np.ndarray]],
    *,
    dataset: str,
    config: ExperimentConfig | None = None,
    parallel: ParallelConfig | None = None,
) -> ExperimentResult:
    """Measure an explicit list of labelled fields."""

    config = config or ExperimentConfig()
    tasks = [(dataset, label, np.asarray(field), config) for label, field in fields]
    results = parallel_map(_measure_one, tasks, parallel)
    records: List[CompressionRecord] = [record for group in results for record in group]
    return ExperimentResult(dataset=dataset, config=config, records=tuple(records))


def run_experiment(
    dataset: str,
    *,
    config: ExperimentConfig | None = None,
    registry: DatasetRegistry | None = None,
    seed: SeedLike = 0,
    parallel: ParallelConfig | None = None,
) -> ExperimentResult:
    """Run a full sweep on a named dataset from the registry.

    Parameters
    ----------
    dataset:
        Registry key (``"gaussian-single"``, ``"gaussian-multi"``,
        ``"miranda"`` with the default registry).
    config:
        Sweep configuration (compressors, bounds, statistics toggles).
    registry:
        Dataset registry; defaults to :func:`repro.datasets.registry.default_registry`.
    seed:
        Seed used to instantiate the dataset (field realisations).
    parallel:
        Optional process-pool configuration for the per-field work.
    """

    registry = registry or default_registry()
    fields = registry.create(dataset, seed=seed)
    return run_experiment_on_fields(
        fields, dataset=dataset, config=config, parallel=parallel
    )


def records_to_table(records: Iterable[CompressionRecord]) -> Dict[str, list]:
    """Column-oriented table (dict of lists) from a list of records.

    The format is deliberately plain (no pandas dependency): keys are
    column names, values are aligned lists — easy to dump as CSV or to
    convert to any dataframe library the user prefers.
    """

    rows = [record.as_dict() for record in records]
    if not rows:
        return {}
    columns: Dict[str, list] = {key: [] for key in rows[0]}
    for row in rows:
        for key in columns:
            columns[key].append(row.get(key))
    return columns
