"""Per-chunk codec selection policies for the array store.

A policy decides which registry codec compresses each chunk:

* :func:`fixed` — one codec for every chunk (the classical mode);
* :func:`adaptive` — pick per chunk via the block-sampling CR estimator
  (:mod:`repro.baselines.sampling_estimator`), the Tao-et-al-style
  selection loop applied at store scale.  The per-candidate estimates are
  recorded alongside the realised CR, so every written store doubles as a
  paper-scale estimated-vs-actual evaluation corpus;
* :func:`best` — compress each chunk with every candidate and keep the
  smallest payload (exhaustive ground truth for the adaptive policy).

Policies are small frozen dataclasses so they pickle into the parallel
chunk-compression workers, and every policy round-trips *losslessly*
through its ``spec`` string (``"fixed:sz"``, ``"adaptive:sz+zfp:n8:s0"``,
``"best"``) which is what ``meta.json`` persists and what the store's
chunk cache keys include — two adaptive policies with different
``n_blocks``/``seed`` must never share cached chunk results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

import numpy as np

from repro.baselines.sampling_estimator import estimate_cr_by_sampling
from repro.compressors.registry import available_compressors

__all__ = [
    "CodecChoice",
    "CodecPolicy",
    "FixedPolicy",
    "AdaptivePolicy",
    "BestPolicy",
    "fixed",
    "adaptive",
    "best",
    "make_policy",
]

#: Candidate set used when a policy spec does not name one.
DEFAULT_CANDIDATES = ("sz", "zfp", "mgard")


@dataclass(frozen=True)
class CodecChoice:
    """Outcome of one per-chunk policy decision.

    ``candidates`` are the codecs the writer must actually run (one for
    fixed/adaptive, all of them for best — the writer keeps the smallest
    payload).  ``estimated_crs`` carries the per-candidate sampling
    estimates when the policy produced any (the estimated-vs-actual log).
    """

    candidates: Tuple[str, ...]
    estimated_crs: Dict[str, float]


class CodecPolicy:
    """Base class: maps a chunk to the codec candidates to compress with."""

    spec: str = "abstract"

    def choose(self, chunk: np.ndarray, error_bound: float) -> CodecChoice:
        raise NotImplementedError


def _check_candidates(candidates: Tuple[str, ...]) -> None:
    if not candidates:
        raise ValueError("at least one candidate codec is required")
    known = available_compressors()
    for name in candidates:
        if name not in known:
            raise KeyError(f"unknown codec {name!r}; available: {known}")


@dataclass(frozen=True)
class FixedPolicy(CodecPolicy):
    """Every chunk uses the same named codec."""

    codec: str

    def __post_init__(self) -> None:
        _check_candidates((self.codec,))

    @property
    def spec(self) -> str:
        return f"fixed:{self.codec}"

    def choose(self, chunk: np.ndarray, error_bound: float) -> CodecChoice:
        return CodecChoice(candidates=(self.codec,), estimated_crs={})


@dataclass(frozen=True)
class AdaptivePolicy(CodecPolicy):
    """Pick the codec with the largest block-sampling CR estimate.

    The estimator's per-compressor overhead correction is on (it is what
    makes cross-codec estimates comparable), and the seed is fixed so a
    rewrite of the same data reproduces the same choices.
    """

    candidates: Tuple[str, ...] = DEFAULT_CANDIDATES
    n_blocks: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        _check_candidates(tuple(self.candidates))

    @property
    def spec(self) -> str:
        # The sampling parameters are part of the spec so the persisted
        # policy (and the chunk-cache key derived from it) reconstructs
        # the exact same per-chunk decisions.
        return (
            "adaptive:"
            + "+".join(self.candidates)
            + f":n{self.n_blocks}:s{self.seed}"
        )

    def choose(self, chunk: np.ndarray, error_bound: float) -> CodecChoice:
        # Tile edge: the estimator's per-ndim default, clamped so chunks
        # smaller than the default tile are sampled whole.
        block_size = min(32 if chunk.ndim == 2 else 16, *chunk.shape)
        # The quad-scale tile targets full-field estimation; at the default
        # chunk geometry it would be the whole chunk, making the estimate
        # dearer than just compressing — keep per-chunk selection strictly
        # cheaper than the exhaustive policy.
        large_tile = 4 * block_size < min(chunk.shape)
        estimates: Dict[str, float] = {}
        for name in self.candidates:
            estimate = estimate_cr_by_sampling(
                chunk,
                name,
                error_bound,
                n_blocks=self.n_blocks,
                block_size=block_size,
                seed=self.seed,
                large_tile=large_tile,
            )
            estimates[name] = float(estimate.estimated_cr)
        selected = max(estimates, key=estimates.get)
        return CodecChoice(candidates=(selected,), estimated_crs=estimates)


@dataclass(frozen=True)
class BestPolicy(CodecPolicy):
    """Compress with every candidate, keep the smallest payload."""

    candidates: Tuple[str, ...] = DEFAULT_CANDIDATES

    def __post_init__(self) -> None:
        _check_candidates(tuple(self.candidates))

    @property
    def spec(self) -> str:
        return "best:" + "+".join(self.candidates)

    def choose(self, chunk: np.ndarray, error_bound: float) -> CodecChoice:
        return CodecChoice(candidates=tuple(self.candidates), estimated_crs={})


def fixed(codec: str) -> FixedPolicy:
    """Policy compressing every chunk with ``codec``."""

    return FixedPolicy(codec=codec)


def adaptive(
    candidates: Tuple[str, ...] = DEFAULT_CANDIDATES,
    *,
    n_blocks: int = 8,
    seed: int = 0,
) -> AdaptivePolicy:
    """Policy picking per chunk via the block-sampling CR estimator."""

    return AdaptivePolicy(candidates=tuple(candidates), n_blocks=n_blocks, seed=seed)


def best(candidates: Tuple[str, ...] = DEFAULT_CANDIDATES) -> BestPolicy:
    """Exhaustive policy: try every candidate, keep the smallest payload."""

    return BestPolicy(candidates=tuple(candidates))


def make_policy(spec: Union[str, CodecPolicy]) -> CodecPolicy:
    """Build a policy from its spec string (idempotent on policy objects).

    Accepted specs: a bare codec name (``"sz"``), ``"fixed:NAME"``,
    ``"adaptive"`` / ``"adaptive:NAME+NAME[:nN][:sS]"`` (sampling blocks
    and seed), ``"best"`` / ``"best:NAME+NAME"``.
    """

    if isinstance(spec, CodecPolicy):
        return spec
    if not isinstance(spec, str) or not spec:
        raise ValueError(f"invalid codec policy spec {spec!r}")
    head, _, tail = spec.partition(":")
    if head == "fixed":
        if not tail:
            raise ValueError("fixed policy needs a codec name, e.g. 'fixed:sz'")
        return fixed(tail)
    if head == "adaptive":
        candidates = DEFAULT_CANDIDATES
        options = {"n_blocks": 8, "seed": 0}
        for segment in (s for s in tail.split(":") if s):
            if segment[0] == "n" and segment[1:].isdigit():
                options["n_blocks"] = int(segment[1:])
            elif segment[0] == "s" and segment[1:].lstrip("-").isdigit():
                options["seed"] = int(segment[1:])
            else:
                candidates = tuple(segment.split("+"))
        return adaptive(candidates, **options)
    if head == "best":
        return best(tuple(tail.split("+")) if tail else DEFAULT_CANDIDATES)
    if tail:
        raise ValueError(f"invalid codec policy spec {spec!r}")
    return fixed(head)
