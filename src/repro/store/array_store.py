"""The chunked compressed array store.

An :class:`ArrayStore` persists one N-d float array (2D plane or 3D
volume) as a directory of three files — ``meta.json``, ``index.bin`` and
``chunks.bin`` (see :mod:`repro.store.format` for the binary layout).
The array is sharded into fixed-size chunks on a grid anchored at the
origin (``128^2`` for planes, ``64^3`` for volumes by default; edge
chunks are smaller), and every chunk is compressed independently through
the pressio facade (:class:`repro.pressio.api.PressioCompressor`) with
the codec its policy selects.

Design points:

* **Random-access partial reads** — :meth:`ArrayStore.read` decodes only
  the chunks intersecting the requested region and assembles the
  subarray; :attr:`ArrayStore.last_read` reports exactly how many chunk
  payloads were decoded (the partial-read benchmark asserts on it).
* **Content dedup** — chunk compression results are memoized in the
  shared :class:`~repro.core.pipeline.ExperimentCache` (keyed by chunk
  bytes + shape + policy configuration), and byte-identical payloads are
  stored once in ``chunks.bin`` with index records sharing the byte
  range.  Payload SHA-1s are persisted in ``meta.json`` so appends dedup
  against existing chunks too.
* **Adaptive codec selection** — with the ``adaptive`` policy each
  chunk records the estimator's per-candidate CR estimates next to the
  realised CR, so a written store doubles as an estimated-vs-actual
  evaluation corpus (:meth:`ArrayStore.info` summarises the estimate
  error).
* **Append** — :meth:`ArrayStore.append` grows the array along axis 0.
  When the current extent is not chunk-aligned the trailing partial
  chunks are re-compressed from their decoded content plus the new data;
  their old payloads stay as unreferenced bytes in ``chunks.bin``
  (deliberate, append stays O(new data)) until :meth:`ArrayStore.compact`
  rewrites the data file from the live index ranges.
* **Concurrent readers** — all decoding lives in the immutable
  :class:`~repro.store.snapshot.StoreSnapshot`; :meth:`ArrayStore.read`
  snapshots its in-memory state, and cross-process readers use
  :meth:`StoreSnapshot.open`, which pairs ``meta.json`` with the exact
  ``index.bin`` bytes it was flushed with (``index_sha1``) so an
  in-flight append is never observed half-written.

Integrity: every payload read is CRC-checked against the index record;
truncated files, bad magic and checksum mismatches raise
:class:`~repro.store.format.StoreCorruptionError` /
:class:`~repro.store.format.StoreFormatError`.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.pipeline import ExperimentCache, memoized_map
from repro.obs.metrics import REGISTRY, publish_cache_counters
from repro.obs.trace import span as obs_span
from repro.pressio.api import PressioCompressor
from repro.pressio.options import CompressorOptions
from repro.compressors.halo import TileHalo, reconstruction_faces
from repro.store.format import (
    IndexRecord,
    StoreCorruptionError,
    StoreFormatError,
    halo_flags,
    pack_index,
)
from repro.store.policy import CodecPolicy, make_policy
from repro.store.snapshot import (
    DATA_NAME,
    INDEX_NAME,
    META_FORMAT,
    META_NAME,
    META_VERSION,
    RAW_CODEC,
    ReadReport,
    StoreSnapshot,
    live_payload_nbytes,
    load_store_state,
    meta_float as _meta_float,
)
from repro.utils.blocking import grid_offsets
from repro.utils.parallel import ParallelConfig, parallel_map
from repro.utils.validation import ensure_positive

__all__ = [
    "ArrayStore",
    "ChunkRecord",
    "ReadReport",
    "StoreSnapshot",
    "default_store_cache",
    "DEFAULT_CHUNK_EDGES",
]

#: Default chunk edge per dimensionality (the ISSUE's 128^2 / 64^3).
DEFAULT_CHUNK_EDGES = {2: 128, 3: 64}

_STORE_CACHE = ExperimentCache(max_entries=256)


def default_store_cache() -> ExperimentCache:
    """The process-wide chunk-compression memo used when none is passed."""

    return _STORE_CACHE


def _publish_store_cache(registry) -> None:
    publish_cache_counters(registry, "store-chunk", _STORE_CACHE.counters())


REGISTRY.register_collector(_publish_store_cache)


@dataclass(frozen=True)
class ChunkRecord:
    """Merged per-chunk view: index entry + recorded statistics."""

    grid_index: Tuple[int, ...]
    offset: Tuple[int, ...]
    shape: Tuple[int, ...]
    codec: str
    nbytes: int
    compression_ratio: float
    estimated_cr: float
    stats: Dict[str, float]


@dataclass(frozen=True)
class _ChunkResult:
    """Worker output for one compressed chunk (cached and persisted).

    ``flags`` are the chunk's index halo flags (0 when the payload decodes
    standalone — including halo attempts that fell back to raw).  For
    anchor chunks in a halo store, ``faces`` carries the reconstruction's
    high-index planes and ``context`` the chunk's entropy context, i.e.
    exactly what neighbouring halo chunks borrow.
    """

    codec: str
    payload: bytes
    compression_ratio: float
    estimated_cr: float
    estimated_crs: Dict[str, float]
    stats: Dict[str, float]
    flags: int = 0
    faces: Optional[Dict[int, np.ndarray]] = None
    context: Optional[object] = None


def _chunk_statistics(chunk: np.ndarray) -> Dict[str, float]:
    """Cheap moments plus the chunk's (2D or 3D) variogram range.

    Each chunk is one window of the paper's windowed analysis, so the
    per-chunk variogram range is the store-scale version of the local
    correlation statistics (Fig. 7); NaN where the fit is impossible
    (constant or too-small chunks).
    """

    stats = {
        "mean": float(chunk.mean()),
        "std": float(chunk.std()),
        "variogram_range": float("nan"),
    }
    if float(chunk.std()) > 1e-15 and min(chunk.shape) >= 8:
        try:
            if chunk.ndim == 2:
                from repro.stats.variogram_models import estimate_variogram_range

                stats["variogram_range"] = float(estimate_variogram_range(chunk))
            else:
                from repro.stats.variogram3d import estimate_variogram_range_3d

                stats["variogram_range"] = float(estimate_variogram_range_3d(chunk))
        except (ValueError, RuntimeError):
            pass
    return stats


def _raw_result(
    chunk: np.ndarray, with_stats: bool, want_faces: bool = False
) -> _ChunkResult:
    """Exact (uncompressed) chunk result."""

    payload = np.ascontiguousarray(chunk, dtype="<f8").tobytes()
    stats = _chunk_statistics(chunk) if with_stats else {}
    stats["max_abs_error"] = 0.0
    return _ChunkResult(
        codec=RAW_CODEC,
        payload=payload,
        compression_ratio=1.0,
        estimated_cr=float("nan"),
        estimated_crs={},
        stats=stats,
        faces=(
            reconstruction_faces(np.asarray(chunk, dtype=np.float64))
            if want_faces
            else None
        ),
    )


def _compress_chunk(task) -> _ChunkResult:
    """Top-level worker so chunk jobs pickle for process pools.

    ``exact_rows`` marks leading axis-0 rows that hold previously-stored
    (already once-lossy) data: the chosen codec's reconstruction must
    reproduce them bit-for-bit, otherwise the chunk falls back to the
    exact raw codec — the store's error bound is relative to the data as
    first written, and a second lossy pass over those rows would let the
    error drift up to twice the bound.

    In a halo store, ``halo``/``ref_axis`` carry the neighbour planes and
    entropy context the chunk may compress against (flags record what the
    payload actually needs to decode), and ``want_faces`` makes the worker
    return the reconstruction faces + context that *this* chunk's halo
    neighbours will borrow (anchor chunks only).
    """

    (
        chunk,
        error_bound,
        policy,
        options,
        with_stats,
        exact_rows,
        halo,
        ref_axis,
        want_faces,
    ) = task
    choice = policy.choose(chunk, error_bound)
    best_name = None
    best_compressed = None
    best_metrics = None
    for name in choice.candidates:
        codec = PressioCompressor(
            name,
            CompressorOptions(error_bound=error_bound, extra=dict(options.get(name, {}))),
        )
        compressed, metrics = codec.compress(
            chunk, halo=halo, collect_context=want_faces
        )
        if (
            best_compressed is None
            or compressed.compressed_nbytes < best_compressed.compressed_nbytes
        ):
            best_name, best_compressed, best_metrics = name, compressed, metrics
    if exact_rows:
        reconstruction = best_compressed.reconstruction
        if reconstruction is None or not np.array_equal(
            reconstruction[:exact_rows], chunk[:exact_rows]
        ):
            return _raw_result(chunk, with_stats, want_faces)
    stats = _chunk_statistics(chunk) if with_stats else {}
    stats["max_abs_error"] = float(best_metrics.max_abs_error)
    flags = 0
    if halo is not None and best_compressed.extras.get("halo_coded"):
        flags = halo_flags(halo.axes_mask, ref_axis)
    return _ChunkResult(
        codec=best_name,
        payload=best_compressed.data,
        compression_ratio=float(best_metrics.compression_ratio),
        estimated_cr=float(choice.estimated_crs.get(best_name, float("nan"))),
        estimated_crs={k: float(v) for k, v in choice.estimated_crs.items()},
        stats=stats,
        flags=flags,
        faces=(
            reconstruction_faces(best_compressed.reconstruction)
            if want_faces
            else None
        ),
        context=best_compressed.entropy_context if want_faces else None,
    )


def _json_sanitize(obj):
    """Replace non-finite floats with ``null`` so ``meta.json`` stays
    strictly valid JSON (bare ``NaN`` tokens are a Python extension that
    jq / JavaScript / strict parsers reject)."""

    if isinstance(obj, dict):
        return {key: _json_sanitize(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_sanitize(value) for value in obj]
    if isinstance(obj, float) and not math.isfinite(obj):
        return None
    return obj


def _normalize_chunk_shape(
    chunk_shape: Union[int, Sequence[int], None], ndim: int
) -> Tuple[int, ...]:
    if chunk_shape is None:
        if ndim not in DEFAULT_CHUNK_EDGES:
            raise ValueError(f"no default chunk shape for {ndim}D arrays")
        return (DEFAULT_CHUNK_EDGES[ndim],) * ndim
    if np.isscalar(chunk_shape):
        shape = (int(chunk_shape),) * ndim
    else:
        shape = tuple(int(c) for c in chunk_shape)
    if len(shape) != ndim:
        raise ValueError(
            f"chunk_shape {shape} does not match array dimensionality {ndim}"
        )
    for edge in shape:
        ensure_positive(edge, "chunk edge")
    return shape


class ArrayStore:
    """A persistent chunked compressed N-d float array.

    Create with :meth:`create` (configuration only; :meth:`write` or
    :meth:`append` supplies data) and reattach with :meth:`open`.
    """

    def __init__(self, path: str, meta: Dict, index: List[IndexRecord]) -> None:
        self.path = str(path)
        self._meta = meta
        self._index = index
        # Policy object when this instance created it (keeps non-spec
        # attributes like a custom AdaptivePolicy seed); opened stores
        # rebuild from the persisted spec.
        self._policy: Optional[CodecPolicy] = None
        #: Report of the most recent :meth:`read` call (None before any).
        self.last_read: Optional[ReadReport] = None
        #: Cache-counter deltas of the most recent write/append call.
        self.last_write_cache_counters: Optional[Dict[str, int]] = None
        #: Cumulative chunk payload decodes performed by this instance.
        self.chunks_decoded_total = 0

    # -- construction ---------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str,
        *,
        chunk_shape: Union[int, Sequence[int], None] = None,
        error_bound: float = 1e-3,
        codec: Union[str, CodecPolicy] = "sz",
        compressor_options: Optional[Dict[str, Dict]] = None,
        chunk_stats: bool = True,
        overwrite: bool = False,
        halo: bool = False,
    ) -> "ArrayStore":
        """Create an empty store directory holding only its configuration.

        ``codec`` is a policy spec (``"sz"``, ``"adaptive"``, ``"best"``,
        …) or a :class:`~repro.store.policy.CodecPolicy`;
        ``compressor_options`` maps codec names to extra factory kwargs.
        ``chunk_shape`` may be an int (cubic chunks), a full tuple, or
        None for the per-ndim default (128^2 / 64^3) resolved at first
        write.

        ``halo=True`` turns on halo-aware chunking: chunks whose grid
        indices sum to an odd number borrow their even-parity face
        neighbours' reconstructed planes and entropy context during
        compression (anchor chunks stay standalone, so a partial read of
        a halo chunk decodes at most one extra neighbour per axis — the
        per-chunk index flags record exactly which).
        """

        ensure_positive(error_bound, "error_bound")
        policy = make_policy(codec)
        if os.path.exists(path):
            entries = os.listdir(path) if os.path.isdir(path) else None
            if entries is None:
                raise StoreFormatError(f"store path {path!r} exists and is not a directory")
            if entries and not overwrite:
                raise StoreFormatError(
                    f"store path {path!r} is not empty (pass overwrite=True to replace)"
                )
        os.makedirs(path, exist_ok=True)
        if chunk_shape is not None and not np.isscalar(chunk_shape):
            chunk_shape = tuple(int(c) for c in chunk_shape)
        elif chunk_shape is not None:
            chunk_shape = int(chunk_shape)
        meta = {
            "format": META_FORMAT,
            "format_version": META_VERSION,
            "shape": None,
            "dtype": "float64",
            "chunk_shape": chunk_shape,
            "error_bound": float(error_bound),
            "codec": policy.spec,
            "compressor_options": {
                str(k): dict(v) for k, v in (compressor_options or {}).items()
            },
            "chunk_stats": bool(chunk_stats),
            "halo": bool(halo),
            "generation": 0,
            "chunks": [],
        }
        store = cls(path, meta, [])
        store._policy = policy
        store._flush(data=b"", truncate=True)
        return store

    @classmethod
    def open(cls, path: str) -> "ArrayStore":
        """Attach to an existing store directory, validating its metadata.

        The load is atomic against concurrent appends: ``meta.json`` and
        ``index.bin`` are read into memory once and cross-validated via
        the recorded index digest (see
        :func:`repro.store.snapshot.load_store_state`), so this never
        pairs a stale index with fresh metadata.
        """

        meta, index = load_store_state(path)
        return cls(path, meta, index)

    def snapshot(self) -> StoreSnapshot:
        """Immutable read view of this instance's current in-memory state."""

        return StoreSnapshot(self._meta, self._index, path=self.path)

    # -- basic properties ----------------------------------------------
    @property
    def shape(self) -> Optional[Tuple[int, ...]]:
        return tuple(self._meta["shape"]) if self._meta["shape"] is not None else None

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self._meta["dtype"])

    @property
    def chunk_shape(self) -> Optional[Tuple[int, ...]]:
        chunk = self._meta["chunk_shape"]
        if chunk is None:
            return None
        if np.isscalar(chunk):
            return None  # unresolved scalar: fixed at first write
        return tuple(chunk)

    @property
    def error_bound(self) -> float:
        return float(self._meta["error_bound"])

    @property
    def halo(self) -> bool:
        """Whether this store compresses odd-parity chunks against halos."""

        return bool(self._meta.get("halo", False))

    @property
    def codec_policy(self) -> str:
        return str(self._meta["codec"])

    @property
    def n_chunks(self) -> int:
        return len(self._index)

    @property
    def original_nbytes(self) -> int:
        shape = self.shape
        if shape is None:
            return 0
        return int(np.prod(shape)) * self.dtype.itemsize

    @property
    def compressed_nbytes(self) -> int:
        """Logical compressed size: sum of the per-chunk payload lengths."""

        return sum(record.length for record in self._index)

    @property
    def stored_nbytes(self) -> int:
        """Bytes actually referenced in ``chunks.bin`` (dedup collapses)."""

        return sum(
            length
            for (offset, length) in {(r.offset, r.length) for r in self._index}
        )

    @property
    def compression_ratio(self) -> float:
        compressed = self.compressed_nbytes
        return self.original_nbytes / compressed if compressed else float("inf")

    @property
    def data_file_nbytes(self) -> int:
        """Actual size of ``chunks.bin`` on disk (live + orphaned bytes)."""

        data_path = os.path.join(self.path, DATA_NAME)
        return os.path.getsize(data_path) if os.path.exists(data_path) else 0

    @property
    def live_payload_nbytes(self) -> int:
        """Bytes of ``chunks.bin`` covered by live index ranges (interval
        union — dedup-shared and overlapping ranges count once)."""

        return live_payload_nbytes(self._index)

    @property
    def generation(self) -> int:
        """Monotonic write counter, bumped by every flush."""

        return int(self._meta.get("generation", 0))

    @property
    def orphaned_nbytes(self) -> int:
        """Payload bytes no live chunk references (left by unaligned
        appends / rewrites; a compaction pass would reclaim them)."""

        return max(0, self.data_file_nbytes - self.live_payload_nbytes)

    # -- write / append -------------------------------------------------
    def _config_key(self) -> str:
        options = self._meta["compressor_options"]
        return (
            f"{self.codec_policy}:{self.error_bound!r}:"
            f"{sorted((k, sorted(v.items())) for k, v in options.items())!r}:"
            f"stats={self._meta['chunk_stats']}:halo={self.halo}"
        )

    def _compress_chunks(
        self,
        chunks: List[np.ndarray],
        parallel: Optional[ParallelConfig],
        cache: Union[ExperimentCache, bool, None],
        exact_rows: Optional[List[int]] = None,
        halos: Optional[List[Optional[TileHalo]]] = None,
        ref_axes: Optional[List[Optional[int]]] = None,
        want_faces: bool = False,
        accumulate_counters: bool = False,
    ) -> List[_ChunkResult]:
        """Compress chunk arrays with memoization + in-call dedup.

        The shared :func:`repro.core.pipeline.memoized_map` protocol, as
        in :func:`repro.volumes.pipeline.compress_volume`: ``None`` /
        ``True`` selects the process-wide store cache, ``False`` disables
        memoization.  Memo keys include each chunk's halo digest and the
        faces request, so halo variants never alias.
        """

        if cache is None or cache is True:
            cache = _STORE_CACHE
        elif cache is False:
            cache = None
        policy = self._policy if self._policy is not None else make_policy(self.codec_policy)
        options = {k: dict(v) for k, v in self._meta["compressor_options"].items()}
        with_stats = bool(self._meta["chunk_stats"])
        config_key = self._config_key()
        if exact_rows is None:
            exact_rows = [0] * len(chunks)
        if halos is None:
            halos = [None] * len(chunks)
        if ref_axes is None:
            ref_axes = [None] * len(chunks)
        items = list(zip(chunks, exact_rows, halos, ref_axes))

        def key_fn(item) -> str:
            chunk, rows, halo, ref_axis = item
            halo_key = halo.digest() if halo is not None else "-"
            return ExperimentCache.key(
                "store-chunk",
                f"{config_key}:exact={rows}:halo={halo_key}:ref={ref_axis}"
                f":faces={want_faces}",
                chunk,
                "",
            )

        def compute_many(pending) -> List[_ChunkResult]:
            tasks = [
                (
                    chunk,
                    self.error_bound,
                    policy,
                    options,
                    with_stats,
                    rows,
                    halo,
                    ref_axis,
                    want_faces,
                )
                for chunk, rows, halo, ref_axis in pending
            ]
            return parallel_map(_compress_chunk, tasks, parallel)

        results, counters = memoized_map(items, key_fn, compute_many, cache)
        if accumulate_counters and self.last_write_cache_counters and counters:
            merged = dict(self.last_write_cache_counters)
            for key, value in counters.items():
                merged[key] = merged.get(key, 0) + value
            self.last_write_cache_counters = merged
        else:
            self.last_write_cache_counters = counters
        return results

    def _compress_block(
        self,
        offsets: List[Tuple[int, ...]],
        chunks: List[np.ndarray],
        exact_rows: Optional[List[int]],
        parallel: Optional[ParallelConfig],
        cache: Union[ExperimentCache, bool, None],
        chunk_shape: Tuple[int, ...],
    ) -> List[_ChunkResult]:
        """Compress one write/append block, honouring the halo policy.

        Halo-off stores take the single-pass path.  Halo stores compress
        in two passes: **anchor** chunks first (grid-index parity even —
        standalone, returning their reconstruction faces and entropy
        context), then the odd-parity **halo** chunks against their
        anchors.  Every face neighbour of an odd chunk is even, so halo
        references never chain; references are further restricted to
        chunks of *this* block, which keeps appends safe — a later append
        rewrites only the trailing axis-0 slab, and no chunk outside that
        slab ever references into it (halo planes look toward lower
        indices only, and a slab's chunks are rewritten together).
        """

        if not self.halo:
            return self._compress_chunks(
                chunks, parallel, cache, exact_rows=exact_rows
            )
        if exact_rows is None:
            exact_rows = [0] * len(chunks)
        grid = [
            tuple(o // e for o, e in zip(offset, chunk_shape)) for offset in offsets
        ]
        anchor_ids = [i for i, g in enumerate(grid) if sum(g) % 2 == 0]
        halo_ids = [i for i, g in enumerate(grid) if sum(g) % 2 == 1]

        results: List[Optional[_ChunkResult]] = [None] * len(chunks)
        anchor_results = self._compress_chunks(
            [chunks[i] for i in anchor_ids],
            parallel,
            cache,
            exact_rows=[exact_rows[i] for i in anchor_ids],
            want_faces=True,
        )
        faces: Dict[Tuple[int, ...], Dict[int, np.ndarray]] = {}
        contexts: Dict[Tuple[int, ...], Optional[object]] = {}
        for i, result in zip(anchor_ids, anchor_results):
            results[i] = result
            faces[offsets[i]] = result.faces
            contexts[offsets[i]] = result.context

        halos: List[Optional[TileHalo]] = []
        ref_axes: List[Optional[int]] = []
        for i in halo_ids:
            offset = offsets[i]
            planes: List[Optional[np.ndarray]] = []
            ref_axis = None
            for axis in range(len(chunk_shape)):
                neighbour = tuple(
                    o - chunk_shape[axis] if a == axis else o
                    for a, o in enumerate(offset)
                )
                if offset[axis] > 0 and neighbour in faces:
                    planes.append(faces[neighbour][axis])
                    ref_axis = axis
                else:
                    planes.append(None)
            context = None
            if ref_axis is not None:
                neighbour = tuple(
                    o - chunk_shape[ref_axis] if a == ref_axis else o
                    for a, o in enumerate(offset)
                )
                context = contexts.get(neighbour)
            halos.append(TileHalo.build(planes, context))
            ref_axes.append(ref_axis)

        halo_results = self._compress_chunks(
            [chunks[i] for i in halo_ids],
            parallel,
            cache,
            exact_rows=[exact_rows[i] for i in halo_ids],
            halos=halos,
            ref_axes=ref_axes,
            accumulate_counters=True,
        )
        for i, result in zip(halo_ids, halo_results):
            results[i] = result
        return results

    def _check_array(self, array: np.ndarray) -> np.ndarray:
        array = np.asarray(array, dtype=np.float64)
        if array.ndim not in (2, 3):
            raise ValueError(f"store arrays must be 2D or 3D, got shape {array.shape}")
        if array.size == 0:
            raise ValueError("store arrays must be non-empty")
        if not np.all(np.isfinite(array)):
            raise ValueError("store arrays must be finite")
        return array

    def write(
        self,
        array: np.ndarray,
        *,
        parallel: Optional[ParallelConfig] = None,
        cache: Union[ExperimentCache, bool, None] = None,
    ) -> "ArrayStore":
        """(Re)write the full array, replacing any existing content."""

        array = self._check_array(array)
        with obs_span("store.write", "store", nbytes=int(array.nbytes)):
            chunk_shape = _normalize_chunk_shape(
                self._meta["chunk_shape"], array.ndim
            )
            offsets = grid_offsets(array.shape, chunk_shape)
            chunks = [
                np.ascontiguousarray(
                    array[
                        tuple(
                            slice(o, o + e)
                            for o, e in zip(offset, chunk_shape)
                        )
                    ]
                )
                for offset in offsets
            ]
            results = self._compress_block(
                offsets, chunks, None, parallel, cache, chunk_shape
            )

            self._meta["shape"] = [int(s) for s in array.shape]
            self._meta["chunk_shape"] = [int(c) for c in chunk_shape]
            index, chunk_meta, data = self._layout_payloads(
                offsets, chunks, results, base_offset=0, existing_digests={}
            )
            self._index = index
            self._meta["chunks"] = chunk_meta
            self._flush(data=data, truncate=True)
        REGISTRY.counter(
            "repro_store_writes_total",
            help="Full-array store writes performed by this process.",
        )
        return self

    def append(
        self,
        array: np.ndarray,
        *,
        parallel: Optional[ParallelConfig] = None,
        cache: Union[ExperimentCache, bool, None] = None,
    ) -> "ArrayStore":
        """Grow the stored array along axis 0 by ``array``.

        On an empty store this is :meth:`write`.  When the current extent
        is not a multiple of the chunk edge, the trailing partial chunks
        are decoded, merged with the new rows and re-compressed; their old
        payloads become unreferenced bytes in ``chunks.bin``.

        The store's error bound stays relative to the data as *first*
        written: rewritten chunks must reproduce the decoded rows
        bit-for-bit (codec blocks spanning the old/new seam usually
        cannot), and fall back to the exact ``raw`` codec otherwise — so
        repeated appends never let the error accumulate past the bound.
        """

        if self.shape is None:
            return self.write(array, parallel=parallel, cache=cache)
        array = self._check_array(array)
        with obs_span("store.append", "store", nbytes=int(array.nbytes)):
            self._append_checked(array, parallel, cache)
        REGISTRY.counter(
            "repro_store_appends_total",
            help="Store appends (axis-0 growth) performed by this process.",
        )
        return self

    def _append_checked(
        self,
        array: np.ndarray,
        parallel: Optional[ParallelConfig],
        cache: Union[ExperimentCache, bool, None],
    ) -> None:
        shape = self.shape
        chunk_shape = self.chunk_shape
        if array.ndim != len(shape) or tuple(array.shape[1:]) != shape[1:]:
            raise ValueError(
                f"append expects shape (*, {', '.join(str(s) for s in shape[1:])}), "
                f"got {array.shape}"
            )
        edge0 = chunk_shape[0]
        remainder = shape[0] % edge0
        base_row = shape[0] - remainder
        if remainder:
            tail = self.read((slice(base_row, shape[0]),))
            block = np.concatenate([tail, array], axis=0)
            # Drop the trailing partial-slab records; C scan order puts
            # them (and only them) at the end of the index.
            n_keep = len(
                grid_offsets((base_row,) + shape[1:], chunk_shape)
            )
            self._index = self._index[:n_keep]
            self._meta["chunks"] = self._meta["chunks"][:n_keep]
        else:
            block = array

        local_offsets = grid_offsets(block.shape, chunk_shape)
        offsets = [(local[0] + base_row,) + tuple(local[1:]) for local in local_offsets]
        chunks = [
            np.ascontiguousarray(
                block[tuple(slice(o, o + e) for o, e in zip(local, chunk_shape))]
            )
            for local in local_offsets
        ]
        # Chunks of the first slab carry `remainder` previously-stored
        # (already once-lossy) rows that must reproduce exactly.
        exact_rows = [remainder if local[0] == 0 else 0 for local in local_offsets]
        results = self._compress_block(
            offsets, chunks, exact_rows, parallel, cache, chunk_shape
        )

        data_path = os.path.join(self.path, DATA_NAME)
        base_offset = os.path.getsize(data_path) if os.path.exists(data_path) else 0
        existing_digests = {
            entry["payload_sha1"]: (record.offset, record.length)
            for entry, record in zip(self._meta["chunks"], self._index)
            if "payload_sha1" in entry
        }
        index, chunk_meta, data = self._layout_payloads(
            offsets,
            chunks,
            results,
            base_offset=base_offset,
            existing_digests=existing_digests,
        )
        self._index.extend(index)
        self._meta["chunks"].extend(chunk_meta)
        self._meta["shape"][0] = int(shape[0] + array.shape[0])
        self._flush(data=data, truncate=False)

    def _layout_payloads(
        self,
        offsets: List[Tuple[int, ...]],
        chunks: List[np.ndarray],
        results: List[_ChunkResult],
        *,
        base_offset: int,
        existing_digests: Dict[str, Tuple[int, int]],
    ):
        """Lay compressed payloads into a byte stream with content dedup."""

        digests = dict(existing_digests)
        data = bytearray()
        index: List[IndexRecord] = []
        chunk_meta: List[Dict] = []
        for offset, chunk, result in zip(offsets, chunks, results):
            digest = hashlib.sha1(result.payload).hexdigest()
            if digest in digests:
                payload_offset, payload_length = digests[digest]
            else:
                payload_offset = base_offset + len(data)
                payload_length = len(result.payload)
                data.extend(result.payload)
                digests[digest] = (payload_offset, payload_length)
            index.append(
                IndexRecord(
                    offset=payload_offset,
                    length=payload_length,
                    codec=result.codec,
                    checksum=zlib.crc32(result.payload),
                    flags=result.flags,
                )
            )
            entry = {
                "offset": [int(o) for o in offset],
                "shape": [int(s) for s in chunk.shape],
                "codec": result.codec,
                "nbytes": payload_length,
                "cr": result.compression_ratio,
                "payload_sha1": digest,
                "stats": result.stats,
            }
            if result.flags:
                entry["halo_flags"] = int(result.flags)
            if result.estimated_crs:
                entry["estimated_cr"] = result.estimated_cr
                entry["estimated_crs"] = result.estimated_crs
            chunk_meta.append(entry)
        return index, chunk_meta, bytes(data)

    def _flush(self, *, data: bytes, truncate: bool) -> None:
        """Persist data, then index, then meta — each step atomic.

        The ordering is what makes :func:`~repro.store.snapshot.load_store_state`
        torn-read-proof during appends: payload bytes land first (appended
        ranges are invisible until indexed), then ``index.bin`` is
        replaced, and only then ``meta.json`` — which records the SHA-1 of
        the exact index bytes just written plus a bumped generation
        counter.  A reader that loads meta first can therefore always
        detect a mismatched index and retry.  (``truncate=True`` rewrites
        payload bytes in place and is only safe with exclusive access —
        :meth:`write` and :meth:`compact`.)
        """

        data_path = os.path.join(self.path, DATA_NAME)
        with open(data_path, "wb" if truncate else "ab") as handle:
            handle.write(data)
        index_payload = pack_index(self._index)
        self._meta["generation"] = int(self._meta.get("generation", 0)) + 1
        self._meta["index_sha1"] = hashlib.sha1(index_payload).hexdigest()
        for name, payload in (
            (INDEX_NAME, index_payload),
            (
                META_NAME,
                json.dumps(
                    _json_sanitize(self._meta), indent=1, allow_nan=False
                ).encode("utf-8"),
            ),
        ):
            target = os.path.join(self.path, name)
            tmp = target + ".tmp"
            with open(tmp, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, target)

    def compact(self) -> Dict[str, int]:
        """Rewrite ``chunks.bin`` to hold exactly the live payload ranges.

        Unaligned appends orphan the payloads of rewritten trailing
        chunks (:attr:`orphaned_nbytes` measures the debt); compaction
        copies every referenced byte range — CRC-verified, deduped, in
        first-reference order — into a fresh data file and rebuilds the
        index records at their new offsets.  Chunk payload bytes, codecs,
        checksums and halo flags are untouched, so reads decode
        bit-identically before and after.

        Requires exclusive access, like :meth:`write`: the data file is
        replaced in place, so a concurrent reader holding the old index
        would fail its CRC checks (loudly, never silently wrong).
        Returns ``{"reclaimed_nbytes", "data_file_nbytes", "n_ranges"}``.
        """

        if not self._index:
            return {"reclaimed_nbytes": 0, "data_file_nbytes": 0, "n_ranges": 0}
        with obs_span("store.compact", "store"):
            before = self.data_file_nbytes
            data_path = os.path.join(self.path, DATA_NAME)
            new_offsets: Dict[Tuple[int, int], int] = {}
            data = bytearray()
            with open(data_path, "rb") as handle:
                for record in self._index:
                    key = (record.offset, record.length)
                    if key in new_offsets:
                        continue
                    handle.seek(record.offset)
                    payload = handle.read(record.length)
                    if len(payload) != record.length or (
                        zlib.crc32(payload) != record.checksum
                    ):
                        raise StoreCorruptionError(
                            f"refusing to compact: live chunk at offset "
                            f"{record.offset} (+{record.length}) is corrupt"
                        )
                    new_offsets[key] = len(data)
                    data.extend(payload)
            self._index = [
                IndexRecord(
                    offset=new_offsets[(record.offset, record.length)],
                    length=record.length,
                    codec=record.codec,
                    checksum=record.checksum,
                    flags=record.flags,
                )
                for record in self._index
            ]
            self._flush(data=bytes(data), truncate=True)
        REGISTRY.counter(
            "repro_store_compactions_total",
            help="Store compactions performed by this process.",
        )
        REGISTRY.counter(
            "repro_store_reclaimed_nbytes_total",
            before - len(data),
            help="Bytes reclaimed from the data file by compaction.",
        )
        return {
            "reclaimed_nbytes": before - len(data),
            "data_file_nbytes": len(data),
            "n_ranges": len(new_offsets),
        }

    # -- read ------------------------------------------------------------
    def read(
        self,
        region=None,
        *,
        chunk_cache=None,
        parallel: Optional[ParallelConfig] = None,
    ) -> np.ndarray:
        """Read a subarray, decoding only the chunks the region intersects.

        ``region`` follows NumPy basic indexing restricted to step-1
        slices and integers (integers drop their axis); ``None`` reads
        the full array.  :attr:`last_read` records how many chunks were
        visited and how many payload decodes were actually performed
        (shared payloads decode once).

        Halo-flagged chunks pull in their anchor neighbours: the flags
        name the axes whose neighbour plane the payload was predicted
        from and the entropy-context reference, so the read decodes at
        most one extra (standalone) neighbour per axis — reads stay
        partial, never cascading further.

        ``chunk_cache`` optionally supplies a shared decoded-chunk cache
        (see :meth:`StoreSnapshot.read`); ``parallel`` (a process-pool
        config) opts into the two-wave parallel decode — anchors, then
        halo chunks — over a shared scratch array, falling back to the
        serial path when shared memory is unavailable.  The actual
        decoding lives in :class:`~repro.store.snapshot.StoreSnapshot`.
        """

        with obs_span("store.read", "store") as read_span:
            values, report = self.snapshot().read(
                region, chunk_cache=chunk_cache, parallel=parallel
            )
            read_span.add(
                chunks_intersecting=report.chunks_intersecting,
                chunks_decoded=report.chunks_decoded,
            )
        self.last_read = report
        self.chunks_decoded_total += report.chunks_decoded
        REGISTRY.counter(
            "repro_store_reads_total",
            help="Store region reads performed by this process.",
        )
        REGISTRY.counter(
            "repro_store_chunks_decoded_total",
            report.chunks_decoded,
            help="Chunk payload decodes performed by store reads.",
        )
        return values

    # -- inspection ------------------------------------------------------
    def chunk_records(self) -> List[ChunkRecord]:
        """Per-chunk view merging the binary index with the recorded stats."""

        records: List[ChunkRecord] = []
        chunk_shape = self.chunk_shape
        for entry, record in zip(self._meta["chunks"], self._index):
            offset = tuple(entry["offset"])
            grid_index = tuple(
                o // e for o, e in zip(offset, chunk_shape)
            )
            records.append(
                ChunkRecord(
                    grid_index=grid_index,
                    offset=offset,
                    shape=tuple(entry["shape"]),
                    codec=entry["codec"],
                    nbytes=int(entry["nbytes"]),
                    compression_ratio=_meta_float(entry["cr"]),
                    estimated_cr=_meta_float(entry.get("estimated_cr")),
                    stats={
                        key: _meta_float(value)
                        for key, value in entry.get("stats", {}).items()
                    },
                )
            )
        return records

    def info(self) -> Dict:
        """Store summary: layout, per-codec usage, CRs, estimate accuracy."""

        records = self.chunk_records()
        codec_histogram: Dict[str, int] = {}
        for record in records:
            codec_histogram[record.codec] = codec_histogram.get(record.codec, 0) + 1
        estimate_errors = [
            abs(r.estimated_cr - r.compression_ratio) / r.compression_ratio
            for r in records
            if np.isfinite(r.estimated_cr) and r.compression_ratio > 0
        ]
        info = {
            "path": self.path,
            "shape": self.shape,
            "dtype": str(self.dtype),
            "chunk_shape": self.chunk_shape,
            "n_chunks": self.n_chunks,
            "codec_policy": self.codec_policy,
            "error_bound": self.error_bound,
            "halo": self.halo,
            "halo_chunks": sum(1 for record in self._index if record.flags),
            "original_nbytes": self.original_nbytes,
            "compressed_nbytes": self.compressed_nbytes,
            "stored_nbytes": self.stored_nbytes,
            "data_file_nbytes": self.data_file_nbytes,
            "orphaned_nbytes": self.orphaned_nbytes,
            "compression_ratio": self.compression_ratio,
            "codec_histogram": codec_histogram,
            "chunks": records,
            "cache_counters": self.last_write_cache_counters,
            "store_cache_counters": _STORE_CACHE.counters(),
            # Canonical observability names (the unified registry naming
            # scheme); the legacy keys above stay as aliases for one
            # release.
            "metrics": {
                "repro_store_chunks_decoded_total": self.chunks_decoded_total,
                "repro_store_orphaned_nbytes": self.orphaned_nbytes,
                "repro_store_data_file_nbytes": self.data_file_nbytes,
                'repro_cache_hits_total{cache="store-chunk"}': (
                    _STORE_CACHE.counters()["hits"]
                ),
                'repro_cache_misses_total{cache="store-chunk"}': (
                    _STORE_CACHE.counters()["misses"]
                ),
                'repro_cache_evictions_total{cache="store-chunk"}': (
                    _STORE_CACHE.counters()["evictions"]
                ),
            },
        }
        if estimate_errors:
            info["estimate_rel_error_mean"] = float(np.mean(estimate_errors))
            info["estimate_rel_error_max"] = float(np.max(estimate_errors))
        return info
