"""The chunked compressed array store.

An :class:`ArrayStore` persists one N-d float array (2D plane or 3D
volume) as a directory of three files — ``meta.json``, ``index.bin`` and
``chunks.bin`` (see :mod:`repro.store.format` for the binary layout).
The array is sharded into fixed-size chunks on a grid anchored at the
origin (``128^2`` for planes, ``64^3`` for volumes by default; edge
chunks are smaller), and every chunk is compressed independently through
the pressio facade (:class:`repro.pressio.api.PressioCompressor`) with
the codec its policy selects.

Design points:

* **Random-access partial reads** — :meth:`ArrayStore.read` decodes only
  the chunks intersecting the requested region and assembles the
  subarray; :attr:`ArrayStore.last_read` reports exactly how many chunk
  payloads were decoded (the partial-read benchmark asserts on it).
* **Content dedup** — chunk compression results are memoized in the
  shared :class:`~repro.core.pipeline.ExperimentCache` (keyed by chunk
  bytes + shape + policy configuration), and byte-identical payloads are
  stored once in ``chunks.bin`` with index records sharing the byte
  range.  Payload SHA-1s are persisted in ``meta.json`` so appends dedup
  against existing chunks too.
* **Adaptive codec selection** — with the ``adaptive`` policy each
  chunk records the estimator's per-candidate CR estimates next to the
  realised CR, so a written store doubles as an estimated-vs-actual
  evaluation corpus (:meth:`ArrayStore.info` summarises the estimate
  error).
* **Append** — :meth:`ArrayStore.append` grows the array along axis 0.
  When the current extent is not chunk-aligned the trailing partial
  chunks are re-compressed from their decoded content plus the new data;
  their old payloads stay as unreferenced bytes in ``chunks.bin`` (a
  compaction pass would reclaim them — deliberate, append stays O(new
  data)).

Integrity: every payload read is CRC-checked against the index record;
truncated files, bad magic and checksum mismatches raise
:class:`~repro.store.format.StoreCorruptionError` /
:class:`~repro.store.format.StoreFormatError`.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import zlib
from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.compressors.base import CompressedField
from repro.core.pipeline import ExperimentCache, memoized_map
from repro.pressio.api import PressioCompressor
from repro.pressio.options import CompressorOptions
from repro.store.format import (
    IndexRecord,
    StoreCorruptionError,
    StoreFormatError,
    pack_index,
    unpack_index,
)
from repro.store.policy import CodecPolicy, make_policy
from repro.utils.blocking import grid_offsets
from repro.utils.parallel import ParallelConfig, parallel_map
from repro.utils.validation import ensure_positive

__all__ = [
    "ArrayStore",
    "ChunkRecord",
    "ReadReport",
    "default_store_cache",
    "DEFAULT_CHUNK_EDGES",
]

META_NAME = "meta.json"
INDEX_NAME = "index.bin"
DATA_NAME = "chunks.bin"
META_FORMAT = "repro-store"
META_VERSION = 1

#: Default chunk edge per dimensionality (the ISSUE's 128^2 / 64^3).
DEFAULT_CHUNK_EDGES = {2: 128, 3: 64}

_STORE_CACHE = ExperimentCache(max_entries=256)


def default_store_cache() -> ExperimentCache:
    """The process-wide chunk-compression memo used when none is passed."""

    return _STORE_CACHE


@dataclass(frozen=True)
class ChunkRecord:
    """Merged per-chunk view: index entry + recorded statistics."""

    grid_index: Tuple[int, ...]
    offset: Tuple[int, ...]
    shape: Tuple[int, ...]
    codec: str
    nbytes: int
    compression_ratio: float
    estimated_cr: float
    stats: Dict[str, float]


@dataclass(frozen=True)
class ReadReport:
    """What one :meth:`ArrayStore.read` call actually did."""

    region: Tuple[Tuple[int, int], ...]
    chunks_total: int
    chunks_intersecting: int
    chunks_decoded: int


@dataclass(frozen=True)
class _ChunkResult:
    """Worker output for one compressed chunk (cached and persisted)."""

    codec: str
    payload: bytes
    compression_ratio: float
    estimated_cr: float
    estimated_crs: Dict[str, float]
    stats: Dict[str, float]


def _chunk_statistics(chunk: np.ndarray) -> Dict[str, float]:
    """Cheap moments plus the chunk's (2D or 3D) variogram range.

    Each chunk is one window of the paper's windowed analysis, so the
    per-chunk variogram range is the store-scale version of the local
    correlation statistics (Fig. 7); NaN where the fit is impossible
    (constant or too-small chunks).
    """

    stats = {
        "mean": float(chunk.mean()),
        "std": float(chunk.std()),
        "variogram_range": float("nan"),
    }
    if float(chunk.std()) > 1e-15 and min(chunk.shape) >= 8:
        try:
            if chunk.ndim == 2:
                from repro.stats.variogram_models import estimate_variogram_range

                stats["variogram_range"] = float(estimate_variogram_range(chunk))
            else:
                from repro.stats.variogram3d import estimate_variogram_range_3d

                stats["variogram_range"] = float(estimate_variogram_range_3d(chunk))
        except (ValueError, RuntimeError):
            pass
    return stats


#: Codec tag of chunks stored as exact little-endian float64 bytes (used
#: when a rewritten chunk cannot reproduce its previously-stored rows
#: exactly — see :meth:`ArrayStore.append`).
RAW_CODEC = "raw"


def _raw_result(chunk: np.ndarray, with_stats: bool) -> _ChunkResult:
    """Exact (uncompressed) chunk result."""

    payload = np.ascontiguousarray(chunk, dtype="<f8").tobytes()
    stats = _chunk_statistics(chunk) if with_stats else {}
    stats["max_abs_error"] = 0.0
    return _ChunkResult(
        codec=RAW_CODEC,
        payload=payload,
        compression_ratio=1.0,
        estimated_cr=float("nan"),
        estimated_crs={},
        stats=stats,
    )


def _compress_chunk(task) -> _ChunkResult:
    """Top-level worker so chunk jobs pickle for process pools.

    ``exact_rows`` marks leading axis-0 rows that hold previously-stored
    (already once-lossy) data: the chosen codec's reconstruction must
    reproduce them bit-for-bit, otherwise the chunk falls back to the
    exact raw codec — the store's error bound is relative to the data as
    first written, and a second lossy pass over those rows would let the
    error drift up to twice the bound.
    """

    chunk, error_bound, policy, options, with_stats, exact_rows = task
    choice = policy.choose(chunk, error_bound)
    best_name = None
    best_compressed = None
    best_metrics = None
    for name in choice.candidates:
        codec = PressioCompressor(
            name,
            CompressorOptions(error_bound=error_bound, extra=dict(options.get(name, {}))),
        )
        compressed, metrics = codec.compress(chunk)
        if (
            best_compressed is None
            or compressed.compressed_nbytes < best_compressed.compressed_nbytes
        ):
            best_name, best_compressed, best_metrics = name, compressed, metrics
    if exact_rows:
        reconstruction = best_compressed.reconstruction
        if reconstruction is None or not np.array_equal(
            reconstruction[:exact_rows], chunk[:exact_rows]
        ):
            return _raw_result(chunk, with_stats)
    stats = _chunk_statistics(chunk) if with_stats else {}
    stats["max_abs_error"] = float(best_metrics.max_abs_error)
    return _ChunkResult(
        codec=best_name,
        payload=best_compressed.data,
        compression_ratio=float(best_metrics.compression_ratio),
        estimated_cr=float(choice.estimated_crs.get(best_name, float("nan"))),
        estimated_crs={k: float(v) for k, v in choice.estimated_crs.items()},
        stats=stats,
    )


def _json_sanitize(obj):
    """Replace non-finite floats with ``null`` so ``meta.json`` stays
    strictly valid JSON (bare ``NaN`` tokens are a Python extension that
    jq / JavaScript / strict parsers reject)."""

    if isinstance(obj, dict):
        return {key: _json_sanitize(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_sanitize(value) for value in obj]
    if isinstance(obj, float) and not math.isfinite(obj):
        return None
    return obj


def _meta_float(value) -> float:
    """Read back a sanitized float (``null`` round-trips to NaN)."""

    return float("nan") if value is None else float(value)


def _normalize_chunk_shape(
    chunk_shape: Union[int, Sequence[int], None], ndim: int
) -> Tuple[int, ...]:
    if chunk_shape is None:
        if ndim not in DEFAULT_CHUNK_EDGES:
            raise ValueError(f"no default chunk shape for {ndim}D arrays")
        return (DEFAULT_CHUNK_EDGES[ndim],) * ndim
    if np.isscalar(chunk_shape):
        shape = (int(chunk_shape),) * ndim
    else:
        shape = tuple(int(c) for c in chunk_shape)
    if len(shape) != ndim:
        raise ValueError(
            f"chunk_shape {shape} does not match array dimensionality {ndim}"
        )
    for edge in shape:
        ensure_positive(edge, "chunk edge")
    return shape


class ArrayStore:
    """A persistent chunked compressed N-d float array.

    Create with :meth:`create` (configuration only; :meth:`write` or
    :meth:`append` supplies data) and reattach with :meth:`open`.
    """

    def __init__(self, path: str, meta: Dict, index: List[IndexRecord]) -> None:
        self.path = str(path)
        self._meta = meta
        self._index = index
        # Policy object when this instance created it (keeps non-spec
        # attributes like a custom AdaptivePolicy seed); opened stores
        # rebuild from the persisted spec.
        self._policy: Optional[CodecPolicy] = None
        #: Report of the most recent :meth:`read` call (None before any).
        self.last_read: Optional[ReadReport] = None
        #: Cache-counter deltas of the most recent write/append call.
        self.last_write_cache_counters: Optional[Dict[str, int]] = None
        #: Cumulative chunk payload decodes performed by this instance.
        self.chunks_decoded_total = 0

    # -- construction ---------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str,
        *,
        chunk_shape: Union[int, Sequence[int], None] = None,
        error_bound: float = 1e-3,
        codec: Union[str, CodecPolicy] = "sz",
        compressor_options: Optional[Dict[str, Dict]] = None,
        chunk_stats: bool = True,
        overwrite: bool = False,
    ) -> "ArrayStore":
        """Create an empty store directory holding only its configuration.

        ``codec`` is a policy spec (``"sz"``, ``"adaptive"``, ``"best"``,
        …) or a :class:`~repro.store.policy.CodecPolicy`;
        ``compressor_options`` maps codec names to extra factory kwargs.
        ``chunk_shape`` may be an int (cubic chunks), a full tuple, or
        None for the per-ndim default (128^2 / 64^3) resolved at first
        write.
        """

        ensure_positive(error_bound, "error_bound")
        policy = make_policy(codec)
        if os.path.exists(path):
            entries = os.listdir(path) if os.path.isdir(path) else None
            if entries is None:
                raise StoreFormatError(f"store path {path!r} exists and is not a directory")
            if entries and not overwrite:
                raise StoreFormatError(
                    f"store path {path!r} is not empty (pass overwrite=True to replace)"
                )
        os.makedirs(path, exist_ok=True)
        if chunk_shape is not None and not np.isscalar(chunk_shape):
            chunk_shape = tuple(int(c) for c in chunk_shape)
        elif chunk_shape is not None:
            chunk_shape = int(chunk_shape)
        meta = {
            "format": META_FORMAT,
            "format_version": META_VERSION,
            "shape": None,
            "dtype": "float64",
            "chunk_shape": chunk_shape,
            "error_bound": float(error_bound),
            "codec": policy.spec,
            "compressor_options": {
                str(k): dict(v) for k, v in (compressor_options or {}).items()
            },
            "chunk_stats": bool(chunk_stats),
            "chunks": [],
        }
        store = cls(path, meta, [])
        store._policy = policy
        store._flush(data=b"", truncate=True)
        return store

    @classmethod
    def open(cls, path: str) -> "ArrayStore":
        """Attach to an existing store directory, validating its metadata."""

        meta_path = os.path.join(path, META_NAME)
        if not os.path.isfile(meta_path):
            raise StoreFormatError(f"{path!r} is not a store (missing {META_NAME})")
        with open(meta_path, "r", encoding="utf-8") as handle:
            try:
                meta = json.load(handle)
            except json.JSONDecodeError as exc:
                raise StoreFormatError(f"corrupt {META_NAME}: {exc}") from exc
        if meta.get("format") != META_FORMAT:
            raise StoreFormatError(f"not a {META_FORMAT} store: {meta.get('format')!r}")
        if meta.get("format_version") != META_VERSION:
            raise StoreFormatError(
                f"unsupported store version {meta.get('format_version')!r}"
            )
        index_path = os.path.join(path, INDEX_NAME)
        with open(index_path, "rb") as handle:
            index = unpack_index(handle.read())
        if len(index) != len(meta.get("chunks", [])):
            raise StoreCorruptionError(
                f"index has {len(index)} records but meta lists "
                f"{len(meta.get('chunks', []))} chunks"
            )
        if meta["shape"] is not None:
            expected = len(
                grid_offsets(tuple(meta["shape"]), tuple(meta["chunk_shape"]))
            )
            if len(index) != expected:
                raise StoreCorruptionError(
                    f"index has {len(index)} records but the chunk grid of shape "
                    f"{tuple(meta['shape'])} needs {expected}"
                )
        return cls(path, meta, index)

    # -- basic properties ----------------------------------------------
    @property
    def shape(self) -> Optional[Tuple[int, ...]]:
        return tuple(self._meta["shape"]) if self._meta["shape"] is not None else None

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self._meta["dtype"])

    @property
    def chunk_shape(self) -> Optional[Tuple[int, ...]]:
        chunk = self._meta["chunk_shape"]
        if chunk is None:
            return None
        if np.isscalar(chunk):
            return None  # unresolved scalar: fixed at first write
        return tuple(chunk)

    @property
    def error_bound(self) -> float:
        return float(self._meta["error_bound"])

    @property
    def codec_policy(self) -> str:
        return str(self._meta["codec"])

    @property
    def n_chunks(self) -> int:
        return len(self._index)

    @property
    def original_nbytes(self) -> int:
        shape = self.shape
        if shape is None:
            return 0
        return int(np.prod(shape)) * self.dtype.itemsize

    @property
    def compressed_nbytes(self) -> int:
        """Logical compressed size: sum of the per-chunk payload lengths."""

        return sum(record.length for record in self._index)

    @property
    def stored_nbytes(self) -> int:
        """Bytes actually referenced in ``chunks.bin`` (dedup collapses)."""

        return sum(
            length
            for (offset, length) in {(r.offset, r.length) for r in self._index}
        )

    @property
    def compression_ratio(self) -> float:
        compressed = self.compressed_nbytes
        return self.original_nbytes / compressed if compressed else float("inf")

    # -- write / append -------------------------------------------------
    def _config_key(self) -> str:
        options = self._meta["compressor_options"]
        return (
            f"{self.codec_policy}:{self.error_bound!r}:"
            f"{sorted((k, sorted(v.items())) for k, v in options.items())!r}:"
            f"stats={self._meta['chunk_stats']}"
        )

    def _compress_chunks(
        self,
        chunks: List[np.ndarray],
        parallel: Optional[ParallelConfig],
        cache: Union[ExperimentCache, bool, None],
        exact_rows: Optional[List[int]] = None,
    ) -> List[_ChunkResult]:
        """Compress chunk arrays with memoization + in-call dedup.

        The shared :func:`repro.core.pipeline.memoized_map` protocol, as
        in :func:`repro.volumes.pipeline.compress_volume`: ``None`` /
        ``True`` selects the process-wide store cache, ``False`` disables
        memoization.
        """

        if cache is None or cache is True:
            cache = _STORE_CACHE
        elif cache is False:
            cache = None
        policy = self._policy if self._policy is not None else make_policy(self.codec_policy)
        options = {k: dict(v) for k, v in self._meta["compressor_options"].items()}
        with_stats = bool(self._meta["chunk_stats"])
        config_key = self._config_key()
        if exact_rows is None:
            exact_rows = [0] * len(chunks)
        items = list(zip(chunks, exact_rows))

        def key_fn(item) -> str:
            chunk, rows = item
            return ExperimentCache.key(
                "store-chunk", f"{config_key}:exact={rows}", chunk, ""
            )

        def compute_many(pending) -> List[_ChunkResult]:
            tasks = [
                (chunk, self.error_bound, policy, options, with_stats, rows)
                for chunk, rows in pending
            ]
            return parallel_map(_compress_chunk, tasks, parallel)

        results, self.last_write_cache_counters = memoized_map(
            items, key_fn, compute_many, cache
        )
        return results

    def _check_array(self, array: np.ndarray) -> np.ndarray:
        array = np.asarray(array, dtype=np.float64)
        if array.ndim not in (2, 3):
            raise ValueError(f"store arrays must be 2D or 3D, got shape {array.shape}")
        if array.size == 0:
            raise ValueError("store arrays must be non-empty")
        if not np.all(np.isfinite(array)):
            raise ValueError("store arrays must be finite")
        return array

    def write(
        self,
        array: np.ndarray,
        *,
        parallel: Optional[ParallelConfig] = None,
        cache: Union[ExperimentCache, bool, None] = None,
    ) -> "ArrayStore":
        """(Re)write the full array, replacing any existing content."""

        array = self._check_array(array)
        chunk_shape = _normalize_chunk_shape(self._meta["chunk_shape"], array.ndim)
        offsets = grid_offsets(array.shape, chunk_shape)
        chunks = [
            np.ascontiguousarray(
                array[tuple(slice(o, o + e) for o, e in zip(offset, chunk_shape))]
            )
            for offset in offsets
        ]
        results = self._compress_chunks(chunks, parallel, cache)

        self._meta["shape"] = [int(s) for s in array.shape]
        self._meta["chunk_shape"] = [int(c) for c in chunk_shape]
        index, chunk_meta, data = self._layout_payloads(
            offsets, chunks, results, base_offset=0, existing_digests={}
        )
        self._index = index
        self._meta["chunks"] = chunk_meta
        self._flush(data=data, truncate=True)
        return self

    def append(
        self,
        array: np.ndarray,
        *,
        parallel: Optional[ParallelConfig] = None,
        cache: Union[ExperimentCache, bool, None] = None,
    ) -> "ArrayStore":
        """Grow the stored array along axis 0 by ``array``.

        On an empty store this is :meth:`write`.  When the current extent
        is not a multiple of the chunk edge, the trailing partial chunks
        are decoded, merged with the new rows and re-compressed; their old
        payloads become unreferenced bytes in ``chunks.bin``.

        The store's error bound stays relative to the data as *first*
        written: rewritten chunks must reproduce the decoded rows
        bit-for-bit (codec blocks spanning the old/new seam usually
        cannot), and fall back to the exact ``raw`` codec otherwise — so
        repeated appends never let the error accumulate past the bound.
        """

        if self.shape is None:
            return self.write(array, parallel=parallel, cache=cache)
        array = self._check_array(array)
        shape = self.shape
        chunk_shape = self.chunk_shape
        if array.ndim != len(shape) or tuple(array.shape[1:]) != shape[1:]:
            raise ValueError(
                f"append expects shape (*, {', '.join(str(s) for s in shape[1:])}), "
                f"got {array.shape}"
            )
        edge0 = chunk_shape[0]
        remainder = shape[0] % edge0
        base_row = shape[0] - remainder
        if remainder:
            tail = self.read((slice(base_row, shape[0]),))
            block = np.concatenate([tail, array], axis=0)
            # Drop the trailing partial-slab records; C scan order puts
            # them (and only them) at the end of the index.
            n_keep = len(
                grid_offsets((base_row,) + shape[1:], chunk_shape)
            )
            self._index = self._index[:n_keep]
            self._meta["chunks"] = self._meta["chunks"][:n_keep]
        else:
            block = array

        local_offsets = grid_offsets(block.shape, chunk_shape)
        offsets = [(local[0] + base_row,) + tuple(local[1:]) for local in local_offsets]
        chunks = [
            np.ascontiguousarray(
                block[tuple(slice(o, o + e) for o, e in zip(local, chunk_shape))]
            )
            for local in local_offsets
        ]
        # Chunks of the first slab carry `remainder` previously-stored
        # (already once-lossy) rows that must reproduce exactly.
        exact_rows = [remainder if local[0] == 0 else 0 for local in local_offsets]
        results = self._compress_chunks(chunks, parallel, cache, exact_rows=exact_rows)

        data_path = os.path.join(self.path, DATA_NAME)
        base_offset = os.path.getsize(data_path) if os.path.exists(data_path) else 0
        existing_digests = {
            entry["payload_sha1"]: (record.offset, record.length)
            for entry, record in zip(self._meta["chunks"], self._index)
            if "payload_sha1" in entry
        }
        index, chunk_meta, data = self._layout_payloads(
            offsets,
            chunks,
            results,
            base_offset=base_offset,
            existing_digests=existing_digests,
        )
        self._index.extend(index)
        self._meta["chunks"].extend(chunk_meta)
        self._meta["shape"][0] = int(shape[0] + array.shape[0])
        self._flush(data=data, truncate=False)
        return self

    def _layout_payloads(
        self,
        offsets: List[Tuple[int, ...]],
        chunks: List[np.ndarray],
        results: List[_ChunkResult],
        *,
        base_offset: int,
        existing_digests: Dict[str, Tuple[int, int]],
    ):
        """Lay compressed payloads into a byte stream with content dedup."""

        digests = dict(existing_digests)
        data = bytearray()
        index: List[IndexRecord] = []
        chunk_meta: List[Dict] = []
        for offset, chunk, result in zip(offsets, chunks, results):
            digest = hashlib.sha1(result.payload).hexdigest()
            if digest in digests:
                payload_offset, payload_length = digests[digest]
            else:
                payload_offset = base_offset + len(data)
                payload_length = len(result.payload)
                data.extend(result.payload)
                digests[digest] = (payload_offset, payload_length)
            index.append(
                IndexRecord(
                    offset=payload_offset,
                    length=payload_length,
                    codec=result.codec,
                    checksum=zlib.crc32(result.payload),
                )
            )
            entry = {
                "offset": [int(o) for o in offset],
                "shape": [int(s) for s in chunk.shape],
                "codec": result.codec,
                "nbytes": payload_length,
                "cr": result.compression_ratio,
                "payload_sha1": digest,
                "stats": result.stats,
            }
            if result.estimated_crs:
                entry["estimated_cr"] = result.estimated_cr
                entry["estimated_crs"] = result.estimated_crs
            chunk_meta.append(entry)
        return index, chunk_meta, bytes(data)

    def _flush(self, *, data: bytes, truncate: bool) -> None:
        """Persist index + meta (atomically) and data (truncate or append)."""

        data_path = os.path.join(self.path, DATA_NAME)
        with open(data_path, "wb" if truncate else "ab") as handle:
            handle.write(data)
        for name, payload in (
            (INDEX_NAME, pack_index(self._index)),
            (
                META_NAME,
                json.dumps(
                    _json_sanitize(self._meta), indent=1, allow_nan=False
                ).encode("utf-8"),
            ),
        ):
            target = os.path.join(self.path, name)
            tmp = target + ".tmp"
            with open(tmp, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, target)

    # -- read ------------------------------------------------------------
    def _normalize_region(
        self, region
    ) -> Tuple[List[Tuple[int, int]], List[int]]:
        """Region → per-axis (start, stop) plus the axes to drop (ints)."""

        shape = self.shape
        if region is None:
            region = ()
        if not isinstance(region, tuple):
            region = (region,)
        if len(region) > len(shape):
            raise ValueError(
                f"region has {len(region)} axes but the array is {len(shape)}D"
            )
        bounds: List[Tuple[int, int]] = []
        drop_axes: List[int] = []
        for axis, length in enumerate(shape):
            if axis >= len(region):
                bounds.append((0, length))
                continue
            spec = region[axis]
            if isinstance(spec, (int, np.integer)):
                idx = int(spec)
                if idx < 0:
                    idx += length
                if not 0 <= idx < length:
                    raise IndexError(
                        f"index {spec} out of bounds for axis {axis} of length {length}"
                    )
                bounds.append((idx, idx + 1))
                drop_axes.append(axis)
            elif isinstance(spec, slice):
                if spec.step not in (None, 1):
                    raise ValueError("store reads support step-1 slices only")
                start, stop, _ = spec.indices(length)
                if stop <= start:
                    raise ValueError(
                        f"empty region on axis {axis}: {spec!r} over length {length}"
                    )
                bounds.append((start, stop))
            else:
                raise TypeError(
                    f"region entries must be int or slice, got {type(spec).__name__}"
                )
        return bounds, drop_axes

    def read(self, region=None) -> np.ndarray:
        """Read a subarray, decoding only the chunks the region intersects.

        ``region`` follows NumPy basic indexing restricted to step-1
        slices and integers (integers drop their axis); ``None`` reads
        the full array.  :attr:`last_read` records how many chunks were
        visited and how many payload decodes were actually performed
        (shared payloads decode once).
        """

        if self.shape is None:
            raise StoreFormatError("store holds no data yet (write an array first)")
        bounds, drop_axes = self._normalize_region(region)
        shape = self.shape
        chunk_shape = self.chunk_shape
        grid = tuple(-(-s // e) for s, e in zip(shape, chunk_shape))

        out = np.empty(
            tuple(stop - start for start, stop in bounds), dtype=self.dtype
        )
        chunk_ranges = [
            range(start // edge, -(-stop // edge))
            for (start, stop), edge in zip(bounds, chunk_shape)
        ]
        grid_strides = []
        stride = 1
        for count in reversed(grid):
            grid_strides.append(stride)
            stride *= count
        grid_strides = list(reversed(grid_strides))

        decoded: Dict[Tuple[int, int, str, Tuple[int, ...]], np.ndarray] = {}
        decodes = 0
        visited = 0
        data_path = os.path.join(self.path, DATA_NAME)
        with open(data_path, "rb") as handle:
            # Same C scan order as grid_offsets — the linear index into
            # self._index depends on it.
            grid_indices = list(product(*chunk_ranges))
            for grid_index in grid_indices:
                visited += 1
                linear = sum(i * s for i, s in zip(grid_index, grid_strides))
                record = self._index[linear]
                chunk_offset = tuple(
                    i * e for i, e in zip(grid_index, chunk_shape)
                )
                chunk_extent = tuple(
                    min(e, s - o)
                    for e, s, o in zip(chunk_shape, shape, chunk_offset)
                )
                key = (record.offset, record.length, record.codec, chunk_extent)
                values = decoded.get(key)
                if values is None:
                    values = self._decode_chunk(handle, record, chunk_extent)
                    decoded[key] = values
                    decodes += 1
                # Intersection of the chunk box with the requested region,
                # in chunk-local and output coordinates.
                src = []
                dst = []
                for (start, stop), o, extent in zip(bounds, chunk_offset, chunk_extent):
                    lo = max(start, o)
                    hi = min(stop, o + extent)
                    src.append(slice(lo - o, hi - o))
                    dst.append(slice(lo - start, hi - start))
                out[tuple(dst)] = values[tuple(src)]

        self.last_read = ReadReport(
            region=tuple(bounds),
            chunks_total=len(self._index),
            chunks_intersecting=len(grid_indices),
            chunks_decoded=decodes,
        )
        self.chunks_decoded_total += decodes
        if drop_axes:
            out = out.reshape(
                tuple(
                    s
                    for axis, s in enumerate(out.shape)
                    if axis not in drop_axes
                )
            )
        return out

    def _decode_chunk(
        self, handle, record: IndexRecord, chunk_extent: Tuple[int, ...]
    ) -> np.ndarray:
        handle.seek(record.offset)
        payload = handle.read(record.length)
        if len(payload) != record.length:
            raise StoreCorruptionError(
                f"truncated chunk payload: wanted {record.length} bytes at "
                f"offset {record.offset}, got {len(payload)}"
            )
        if zlib.crc32(payload) != record.checksum:
            raise StoreCorruptionError(
                f"chunk checksum mismatch at offset {record.offset} "
                f"(codec {record.codec})"
            )
        if record.codec == RAW_CODEC:
            expected = int(np.prod(chunk_extent)) * 8
            if len(payload) != expected:
                raise StoreCorruptionError(
                    f"raw chunk payload of {len(payload)} bytes, expected {expected}"
                )
            values = np.frombuffer(payload, dtype="<f8").reshape(chunk_extent)
            return np.asarray(values, dtype=self.dtype)
        options = self._meta["compressor_options"].get(record.codec, {})
        codec = PressioCompressor(
            record.codec,
            CompressorOptions(error_bound=self.error_bound, extra=dict(options)),
        )
        compressed = CompressedField(
            data=payload,
            original_shape=chunk_extent,
            original_dtype=self.dtype,
            compressor=record.codec,
            error_bound=self.error_bound,
        )
        values = codec.decompress(compressed)
        if tuple(values.shape) != chunk_extent:
            raise StoreCorruptionError(
                f"chunk decoded to shape {values.shape}, expected {chunk_extent}"
            )
        return np.asarray(values, dtype=self.dtype)

    # -- inspection ------------------------------------------------------
    def chunk_records(self) -> List[ChunkRecord]:
        """Per-chunk view merging the binary index with the recorded stats."""

        records: List[ChunkRecord] = []
        chunk_shape = self.chunk_shape
        for entry, record in zip(self._meta["chunks"], self._index):
            offset = tuple(entry["offset"])
            grid_index = tuple(
                o // e for o, e in zip(offset, chunk_shape)
            )
            records.append(
                ChunkRecord(
                    grid_index=grid_index,
                    offset=offset,
                    shape=tuple(entry["shape"]),
                    codec=entry["codec"],
                    nbytes=int(entry["nbytes"]),
                    compression_ratio=_meta_float(entry["cr"]),
                    estimated_cr=_meta_float(entry.get("estimated_cr")),
                    stats={
                        key: _meta_float(value)
                        for key, value in entry.get("stats", {}).items()
                    },
                )
            )
        return records

    def info(self) -> Dict:
        """Store summary: layout, per-codec usage, CRs, estimate accuracy."""

        records = self.chunk_records()
        codec_histogram: Dict[str, int] = {}
        for record in records:
            codec_histogram[record.codec] = codec_histogram.get(record.codec, 0) + 1
        estimate_errors = [
            abs(r.estimated_cr - r.compression_ratio) / r.compression_ratio
            for r in records
            if np.isfinite(r.estimated_cr) and r.compression_ratio > 0
        ]
        info = {
            "path": self.path,
            "shape": self.shape,
            "dtype": str(self.dtype),
            "chunk_shape": self.chunk_shape,
            "n_chunks": self.n_chunks,
            "codec_policy": self.codec_policy,
            "error_bound": self.error_bound,
            "original_nbytes": self.original_nbytes,
            "compressed_nbytes": self.compressed_nbytes,
            "stored_nbytes": self.stored_nbytes,
            "compression_ratio": self.compression_ratio,
            "codec_histogram": codec_histogram,
            "chunks": records,
            "cache_counters": self.last_write_cache_counters,
            "store_cache_counters": _STORE_CACHE.counters(),
        }
        if estimate_errors:
            info["estimate_rel_error_mean"] = float(np.mean(estimate_errors))
            info["estimate_rel_error_max"] = float(np.max(estimate_errors))
        return info
