"""Immutable store snapshots: the concurrent-reader-safe read path.

An :class:`ArrayStore` directory is replaced in place by writers (append,
write, compact), so a reader that touches ``meta.json`` and ``index.bin``
at different times can observe a torn state — new index with old meta, or
vice versa.  This module makes reads safe without any locking:

* :func:`load_store_state` reads ``meta.json`` and ``index.bin`` into
  memory **once**, and validates that they belong to the same write
  generation: every flush records the SHA-1 of the index bytes inside
  ``meta.json``, and the writer replaces ``index.bin`` *before*
  ``meta.json`` (each atomically via ``os.replace``).  Reading meta first
  therefore detects every torn interleaving as a digest mismatch, which
  is transient and simply retried.
* :class:`StoreSnapshot` is an immutable view over one such consistent
  ``(meta, index)`` pair.  All region decoding lives here;
  :meth:`ArrayStore.read` is a thin delegate that snapshots its own
  in-memory state.  A snapshot taken while another process appends keeps
  decoding the pre-append state — appended payload bytes are strictly
  new ranges of ``chunks.bin``, so old byte ranges stay valid.  (Full
  rewrites — :meth:`ArrayStore.write` / :meth:`ArrayStore.compact` —
  replace payload bytes and need exclusive access; a stale snapshot then
  fails its CRC checks loudly instead of returning garbage.)

Snapshots can also be built over an in-memory payload buffer instead of a
directory (``data=``): the serve layer's client-side-decode mode ships
index records plus the needed payload byte ranges over HTTP, and the
client decodes them through the exact same code path — bit-identical to
a server-side read by construction.

Reads optionally consult a shared decoded-chunk cache (``chunk_cache=``,
see :class:`repro.serve.cache.HotChunkCache`): chunks are keyed by
payload content hash plus every decode parameter, so any byte-identical
chunk decoded under the same bound/codec/halo is served from memory
without touching ``chunks.bin``.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import time
import zlib
from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compressors.base import CompressedField
from repro.compressors.halo import TileHalo
from repro.obs.trace import span as obs_span
from repro.pressio.api import PressioCompressor
from repro.pressio.options import CompressorOptions
from repro.utils.parallel import (
    ParallelConfig,
    SharedArraySession,
    WorkerPool,
    read_shared,
    use_shared_arrays,
    write_shared,
)
from repro.store.format import (
    IndexRecord,
    StoreCorruptionError,
    StoreFormatError,
    parse_halo_flags,
    unpack_index,
)

__all__ = [
    "META_NAME",
    "INDEX_NAME",
    "DATA_NAME",
    "META_FORMAT",
    "META_VERSION",
    "RAW_CODEC",
    "ReadReport",
    "StoreSnapshot",
    "load_store_state",
    "live_payload_nbytes",
    "meta_float",
]

META_NAME = "meta.json"
INDEX_NAME = "index.bin"
DATA_NAME = "chunks.bin"
META_FORMAT = "repro-store"
META_VERSION = 1

#: Codec tag of chunks stored as exact little-endian float64 bytes.
RAW_CODEC = "raw"


@dataclass(frozen=True)
class ReadReport:
    """What one snapshot/store read actually did.

    ``chunks_decoded`` counts real payload decodes; ``cache_hits`` counts
    chunks served from a shared decoded-chunk cache instead (a fully hot
    read decodes nothing).
    """

    region: Tuple[Tuple[int, int], ...]
    chunks_total: int
    chunks_intersecting: int
    chunks_decoded: int
    cache_hits: int = 0


def meta_float(value) -> float:
    """Read back a JSON-sanitized float (``null`` round-trips to NaN)."""

    return float("nan") if value is None else float(value)


def live_payload_nbytes(index: List[IndexRecord]) -> int:
    """Bytes of ``chunks.bin`` covered by live index ranges (interval
    union — dedup-shared and overlapping ranges count once)."""

    ranges = sorted({(r.offset, r.length) for r in index})
    total = 0
    covered_until = 0
    for offset, length in ranges:
        end = offset + length
        if end <= covered_until:
            continue
        total += end - max(offset, covered_until)
        covered_until = end
    return total


def _state_inconsistency(meta: Dict, index: List[IndexRecord]) -> Optional[str]:
    """Reason string when ``meta`` and ``index`` disagree, else None."""

    n_meta = len(meta.get("chunks", []))
    if len(index) != n_meta:
        return f"index has {len(index)} records but meta lists {n_meta} chunks"
    if meta.get("shape") is not None:
        from repro.utils.blocking import grid_offsets

        expected = len(grid_offsets(tuple(meta["shape"]), tuple(meta["chunk_shape"])))
        if len(index) != expected:
            return (
                f"index has {len(index)} records but the chunk grid of shape "
                f"{tuple(meta['shape'])} needs {expected}"
            )
    return None


def load_store_state(
    path: str, *, retries: int = 6, retry_wait_s: float = 0.015
) -> Tuple[Dict, List[IndexRecord]]:
    """Atomically read a store's ``meta.json`` + ``index.bin`` into memory.

    Both files are read exactly once per attempt and cross-validated:
    ``meta.json`` records the SHA-1 of the index bytes it was flushed
    with, so a replacement racing this read shows up as a digest (or
    chunk-count) mismatch.  Mismatches are transient while a writer is
    mid-flush and are retried with a short sleep; a store that never
    converges raises :class:`StoreCorruptionError`.

    Stores written before the digest was recorded (no ``index_sha1`` key)
    fall back to the structural consistency checks alone.
    """

    meta_path = os.path.join(path, META_NAME)
    if not os.path.isfile(meta_path):
        raise StoreFormatError(f"{path!r} is not a store (missing {META_NAME})")
    reason = "unreadable state"
    for attempt in range(max(1, retries)):
        if attempt:
            time.sleep(retry_wait_s)
        with open(meta_path, "r", encoding="utf-8") as handle:
            try:
                meta = json.load(handle)
            except json.JSONDecodeError as exc:
                raise StoreFormatError(f"corrupt {META_NAME}: {exc}") from exc
        if meta.get("format") != META_FORMAT:
            raise StoreFormatError(f"not a {META_FORMAT} store: {meta.get('format')!r}")
        if meta.get("format_version") != META_VERSION:
            raise StoreFormatError(
                f"unsupported store version {meta.get('format_version')!r}"
            )
        with open(os.path.join(path, INDEX_NAME), "rb") as handle:
            blob = handle.read()
        recorded = meta.get("index_sha1")
        if recorded is not None and hashlib.sha1(blob).hexdigest() != recorded:
            reason = "index.bin does not match the digest recorded in meta.json"
            continue
        try:
            index = unpack_index(blob)
        except StoreFormatError:
            if recorded is not None:
                # The digest matched, so these are exactly the bytes the
                # writer flushed: the index is corrupt, not torn.
                raise
            reason = "index.bin failed to parse"
            continue
        inconsistency = _state_inconsistency(meta, index)
        if inconsistency is None:
            return meta, index
        reason = inconsistency
    raise StoreCorruptionError(
        f"store at {path!r} failed consistency checks {retries} times ({reason}); "
        f"either a writer is replacing it continuously or the store is corrupt"
    )


def _decode_chunk_shm(task):
    """Zero-copy chunk-decode worker (top-level, picklable).

    The submitting side ships the (compressed, CRC-checked) payload bytes
    plus a :class:`~repro.utils.parallel.SharedArraySpec` of a shared
    scratch array holding one slot per needed chunk; the worker decodes
    into its slot in place.  Halo chunks read their anchor neighbours'
    high faces straight out of the scratch array — wave 1 runs strictly
    after wave 0, so every referenced slot is complete.  The documented
    return payload is ``(slot, entropy_context_or_None)``.
    """

    (
        payload,
        codec_name,
        chunk_extent,
        error_bound,
        dtype_str,
        options,
        scratch_spec,
        slot,
        plane_specs,
        context,
        want_context,
    ) = task
    dtype = np.dtype(dtype_str)
    slot_region = (slot,) + tuple(slice(0, e) for e in chunk_extent)
    if codec_name == RAW_CODEC:
        values = np.frombuffer(payload, dtype="<f8").reshape(chunk_extent)
        write_shared(scratch_spec, slot_region, np.asarray(values, dtype=dtype))
        return slot, None
    halo = None
    if plane_specs is not None:
        planes = [
            read_shared(scratch_spec, spec) if spec is not None else None
            for spec in plane_specs
        ]
        halo = TileHalo.build(planes, context)
    codec = PressioCompressor(
        codec_name,
        CompressorOptions(error_bound=error_bound, extra=dict(options)),
    )
    compressed = CompressedField(
        data=payload,
        original_shape=chunk_extent,
        original_dtype=dtype,
        compressor=codec_name,
        error_bound=error_bound,
    )
    if want_context:
        values, own_context = codec.decompress_with_context(compressed, halo=halo)
    else:
        values, own_context = codec.decompress(compressed, halo=halo), None
    if tuple(values.shape) != tuple(chunk_extent):
        raise StoreCorruptionError(
            f"chunk decoded to shape {values.shape}, expected {chunk_extent}"
        )
    write_shared(scratch_spec, slot_region, np.asarray(values, dtype=dtype))
    return slot, own_context


class StoreSnapshot:
    """Read-only view of one consistent store state.

    Construct with :meth:`open` (atomic on-disk load), from an
    :class:`~repro.store.array_store.ArrayStore` via its ``snapshot()``
    method, or directly from ``(meta, index)`` plus an in-memory payload
    buffer (the serve layer's client-side decode).
    """

    def __init__(
        self,
        meta: Dict,
        index: List[IndexRecord],
        *,
        path: Optional[str] = None,
        data: Optional[bytes] = None,
    ) -> None:
        if path is None and data is None:
            raise ValueError("snapshot needs a store path or payload bytes")
        self._meta = meta
        self._index = list(index)
        self.path = str(path) if path is not None else None
        self._data = data

    @classmethod
    def open(cls, path: str, **load_kwargs) -> "StoreSnapshot":
        """Atomically load a consistent snapshot from a store directory."""

        meta, index = load_store_state(path, **load_kwargs)
        return cls(meta, index, path=path)

    # -- properties ------------------------------------------------------
    @property
    def meta(self) -> Dict:
        return self._meta

    @property
    def index(self) -> List[IndexRecord]:
        return list(self._index)

    @property
    def shape(self) -> Optional[Tuple[int, ...]]:
        return tuple(self._meta["shape"]) if self._meta["shape"] is not None else None

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self._meta["dtype"])

    @property
    def chunk_shape(self) -> Optional[Tuple[int, ...]]:
        chunk = self._meta["chunk_shape"]
        if chunk is None or np.isscalar(chunk):
            return None
        return tuple(chunk)

    @property
    def error_bound(self) -> float:
        return float(self._meta["error_bound"])

    @property
    def halo(self) -> bool:
        return bool(self._meta.get("halo", False))

    @property
    def codec_policy(self) -> str:
        return str(self._meta["codec"])

    @property
    def generation(self) -> int:
        """Write generation this snapshot observed (0 for legacy stores)."""

        return int(self._meta.get("generation", 0))

    @property
    def n_chunks(self) -> int:
        return len(self._index)

    @property
    def grid_shape(self) -> Tuple[int, ...]:
        shape, chunk_shape = self.shape, self.chunk_shape
        return tuple(-(-s // e) for s, e in zip(shape, chunk_shape))

    @property
    def data_nbytes(self) -> int:
        """Size of the payload source (``chunks.bin`` or the buffer)."""

        if self._data is not None:
            return len(self._data)
        data_path = os.path.join(self.path, DATA_NAME)
        return os.path.getsize(data_path) if os.path.exists(data_path) else 0

    def payload_sha1(self, linear: int) -> Optional[str]:
        """Recorded content hash of chunk ``linear``'s payload, if any."""

        entries = self._meta.get("chunks") or []
        if 0 <= linear < len(entries):
            sha1 = entries[linear].get("payload_sha1")
            return str(sha1) if sha1 is not None else None
        return None

    def _open_data(self):
        if self._data is not None:
            return io.BytesIO(self._data)
        return open(os.path.join(self.path, DATA_NAME), "rb")

    # -- geometry --------------------------------------------------------
    def _grid_strides(self) -> List[int]:
        strides: List[int] = []
        stride = 1
        for count in reversed(self.grid_shape):
            strides.append(stride)
            stride *= count
        return list(reversed(strides))

    def linear_index(self, grid_index: Tuple[int, ...]) -> int:
        return sum(i * s for i, s in zip(grid_index, self._grid_strides()))

    def chunk_box(
        self, grid_index: Tuple[int, ...]
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Array-space ``(offset, extent)`` of the chunk at ``grid_index``."""

        shape, chunk_shape = self.shape, self.chunk_shape
        offset = tuple(i * e for i, e in zip(grid_index, chunk_shape))
        extent = tuple(
            min(e, s - o) for e, s, o in zip(chunk_shape, shape, offset)
        )
        return offset, extent

    def normalize_region(self, region) -> Tuple[List[Tuple[int, int]], List[int]]:
        """Region → per-axis (start, stop) plus the axes to drop (ints)."""

        shape = self.shape
        if shape is None:
            raise StoreFormatError("store holds no data yet (write an array first)")
        if region is None:
            region = ()
        if not isinstance(region, tuple):
            region = (region,)
        if len(region) > len(shape):
            raise ValueError(
                f"region has {len(region)} axes but the array is {len(shape)}D"
            )
        bounds: List[Tuple[int, int]] = []
        drop_axes: List[int] = []
        for axis, length in enumerate(shape):
            if axis >= len(region):
                bounds.append((0, length))
                continue
            spec = region[axis]
            if isinstance(spec, (int, np.integer)):
                idx = int(spec)
                if idx < 0:
                    idx += length
                if not 0 <= idx < length:
                    raise IndexError(
                        f"index {spec} out of bounds for axis {axis} of length {length}"
                    )
                bounds.append((idx, idx + 1))
                drop_axes.append(axis)
            elif isinstance(spec, slice):
                if spec.step not in (None, 1):
                    raise ValueError("store reads support step-1 slices only")
                start, stop, _ = spec.indices(length)
                if stop <= start:
                    raise ValueError(
                        f"empty region on axis {axis}: {spec!r} over length {length}"
                    )
                bounds.append((start, stop))
            else:
                raise TypeError(
                    f"region entries must be int or slice, got {type(spec).__name__}"
                )
        return bounds, drop_axes

    def intersecting_chunks(
        self, bounds: List[Tuple[int, int]]
    ) -> List[Tuple[int, ...]]:
        """Grid indices of chunks intersecting ``bounds``, in C scan order."""

        chunk_ranges = [
            range(start // edge, -(-stop // edge))
            for (start, stop), edge in zip(bounds, self.chunk_shape)
        ]
        return list(product(*chunk_ranges))

    def halo_dependencies(self, grid_index: Tuple[int, ...]) -> List[Tuple[int, ...]]:
        """Anchor neighbours the chunk at ``grid_index`` decodes against."""

        record = self._index[self.linear_index(grid_index)]
        is_halo, axes_mask, ref_axis = parse_halo_flags(record.flags)
        if not is_halo:
            return []
        deps: List[Tuple[int, ...]] = []
        axes = {axis for axis in range(len(self.shape)) if axes_mask & (1 << axis)}
        if ref_axis is not None:
            axes.add(ref_axis)
        for axis in sorted(axes):
            if grid_index[axis] == 0:
                continue
            deps.append(
                tuple(g - 1 if a == axis else g for a, g in enumerate(grid_index))
            )
        return deps

    # -- read ------------------------------------------------------------
    def read(
        self, region=None, *, chunk_cache=None, parallel: Optional[ParallelConfig] = None
    ) -> Tuple[np.ndarray, ReadReport]:
        """Read a subarray, decoding only the chunks the region intersects.

        ``region`` follows NumPy basic indexing restricted to step-1
        slices and integers (integers drop their axis); ``None`` reads the
        full array.  Halo-flagged chunks pull in their anchor neighbours
        (at most one extra standalone decode per axis — reads stay
        partial, never cascading further).

        ``chunk_cache`` optionally supplies a shared decoded-chunk cache
        (:class:`repro.serve.cache.HotChunkCache`); hits skip both the
        payload read and the decode.  Returns ``(values, report)``.

        ``parallel`` opts into the two-wave parallel decode (see
        :meth:`_read_parallel`); it requires a process pool with working
        shared memory and is mutually exclusive with ``chunk_cache``
        (the serve layer's hot path keeps the serial decoder) — either
        condition failing falls back to the serial path, whose output is
        bit-identical anyway.
        """

        if use_shared_arrays(parallel) and chunk_cache is None:
            return self._read_parallel(region, parallel)

        bounds, drop_axes = self.normalize_region(region)
        shape = self.shape
        grid_strides = self._grid_strides()

        out = np.empty(
            tuple(stop - start for start, stop in bounds), dtype=self.dtype
        )

        # Decode caches: payloads of standalone chunks are shared by byte
        # range (dedup — identical payload bytes determine both the values
        # and the derived entropy context), halo chunks are keyed by grid
        # position (identical payloads under different halos decode
        # differently).
        payload_cache: Dict[Tuple[int, int, str, Tuple[int, ...]], tuple] = {}
        values_cache: Dict[int, np.ndarray] = {}
        context_cache: Dict[int, object] = {}
        decodes = 0
        cache_hits = 0
        # Everything the decode depends on besides the payload bytes; part
        # of the shared-cache key so two stores serving byte-identical
        # chunks under different bounds/options never alias.
        decode_config = (
            float(self.error_bound),
            str(self.dtype),
            repr(
                sorted(
                    (k, sorted(v.items()))
                    for k, v in self._meta.get("compressor_options", {}).items()
                )
            ),
        )

        def decode_at(handle, grid_index, want_context=False):
            nonlocal decodes, cache_hits
            linear = sum(i * s for i, s in zip(grid_index, grid_strides))
            record = self._index[linear]
            is_halo, axes_mask, ref_axis = parse_halo_flags(record.flags)
            # In a halo store, anchors double as entropy-context references;
            # deriving the context during the first decode (one histogram
            # pass) avoids a second payload decode if a neighbour needs it.
            if self.halo and not is_halo:
                want_context = True
            if linear in values_cache and (
                not want_context or linear in context_cache
            ):
                return values_cache[linear]
            _, chunk_extent = self.chunk_box(grid_index)
            halo = None
            if is_halo:
                planes: List[Optional[np.ndarray]] = [None] * len(shape)
                for axis in range(len(shape)):
                    if not axes_mask & (1 << axis):
                        continue
                    if grid_index[axis] == 0:
                        raise StoreCorruptionError(
                            f"halo chunk at grid {grid_index} references a "
                            f"neighbour beyond the array edge (axis {axis})"
                        )
                    neighbour = tuple(
                        g - 1 if a == axis else g
                        for a, g in enumerate(grid_index)
                    )
                    n_linear = sum(
                        i * s for i, s in zip(neighbour, grid_strides)
                    )
                    if self._index[n_linear].flags:
                        raise StoreCorruptionError(
                            f"halo chunk at grid {grid_index} references the "
                            f"non-anchor chunk at grid {neighbour}"
                        )
                    n_values = decode_at(
                        handle, neighbour, want_context=(axis == ref_axis)
                    )
                    planes[axis] = np.ascontiguousarray(
                        np.take(n_values, -1, axis=axis)
                    )
                context = None
                if ref_axis is not None:
                    neighbour = tuple(
                        g - 1 if a == ref_axis else g
                        for a, g in enumerate(grid_index)
                    )
                    n_linear = sum(
                        i * s for i, s in zip(neighbour, grid_strides)
                    )
                    if n_linear not in context_cache:
                        decode_at(handle, neighbour, want_context=True)
                    context = context_cache.get(n_linear)
                halo = TileHalo.build(planes, context)
            else:
                # Standalone payloads dedup by byte range; a cached entry
                # is reusable for a context-needing caller only when its
                # context was derived too.
                key = (record.offset, record.length, record.codec, chunk_extent)
                cached = payload_cache.get(key)
                if cached is not None and (not want_context or cached[1] is not None):
                    values_cache[linear] = cached[0]
                    if want_context:
                        context_cache[linear] = cached[1]
                    return cached[0]

            hot_key = None
            if chunk_cache is not None:
                sha1 = self.payload_sha1(linear)
                if sha1 is not None:
                    hot_key = (
                        sha1,
                        record.codec,
                        chunk_extent,
                        halo.digest() if halo is not None else None,
                        decode_config,
                    )
                    hot = chunk_cache.get(hot_key, want_context=want_context)
                    if hot is not None:
                        values, context = hot
                        cache_hits += 1
                        values_cache[linear] = values
                        if want_context:
                            context_cache[linear] = context
                        if not is_halo:
                            key = (
                                record.offset,
                                record.length,
                                record.codec,
                                chunk_extent,
                            )
                            payload_cache[key] = (values, context)
                        return values

            values, context = self._decode_chunk(
                handle, record, chunk_extent, halo=halo, want_context=want_context
            )
            decodes += 1
            values_cache[linear] = values
            if want_context:
                context_cache[linear] = context
            if not is_halo:
                key = (record.offset, record.length, record.codec, chunk_extent)
                payload_cache[key] = (values, context)
            if hot_key is not None:
                chunk_cache.put(hot_key, values, context)
            return values

        with self._open_data() as handle:
            # Same C scan order as grid_offsets — the linear index into
            # the record list depends on it.
            grid_indices = self.intersecting_chunks(bounds)
            for grid_index in grid_indices:
                chunk_offset, chunk_extent = self.chunk_box(grid_index)
                values = decode_at(handle, grid_index)
                # Intersection of the chunk box with the requested region,
                # in chunk-local and output coordinates.
                src = []
                dst = []
                for (start, stop), o, extent in zip(bounds, chunk_offset, chunk_extent):
                    lo = max(start, o)
                    hi = min(stop, o + extent)
                    src.append(slice(lo - o, hi - o))
                    dst.append(slice(lo - start, hi - start))
                out[tuple(dst)] = values[tuple(src)]

        report = ReadReport(
            region=tuple(bounds),
            chunks_total=len(self._index),
            chunks_intersecting=len(grid_indices),
            chunks_decoded=decodes,
            cache_hits=cache_hits,
        )
        if drop_axes:
            out = out.reshape(
                tuple(
                    s
                    for axis, s in enumerate(out.shape)
                    if axis not in drop_axes
                )
            )
        return out, report

    def _read_parallel(
        self, region, parallel: ParallelConfig
    ) -> Tuple[np.ndarray, ReadReport]:
        """Two-wave parallel region decode over a shared scratch array.

        The grid-parity layout makes the halo dependency graph exactly two
        levels deep: anchors (flags == 0) depend on nothing, halo chunks
        depend only on anchors.  So the schedule degenerates to two waves
        — all needed anchors decode concurrently, then all halo chunks —
        with workers writing into one shared scratch array (a slot per
        unique chunk) and halo workers reading their neighbours' high
        faces straight back out of it.  Standalone chunks with dedup-shared
        payload bytes share a slot and decode once, mirroring the serial
        payload cache.  Output is bit-identical to the serial path: halo
        planes and entropy contexts are schedule-independent.
        """

        bounds, drop_axes = self.normalize_region(region)
        shape = self.shape
        chunk_shape = self.chunk_shape
        grid_indices = self.intersecting_chunks(bounds)

        # Needed set = intersecting chunks plus their anchor dependencies;
        # unique standalone payloads share a slot.
        slot_of: Dict[Tuple[int, ...], int] = {}
        payload_slot: Dict[tuple, int] = {}
        slot_grids: List[Tuple[int, ...]] = []
        ordered: List[Tuple[int, ...]] = []
        seen = set()
        for grid_index in grid_indices:
            for dep in self.halo_dependencies(grid_index) + [grid_index]:
                if dep not in seen:
                    seen.add(dep)
                    ordered.append(dep)
        for grid_index in ordered:
            record = self._index[self.linear_index(grid_index)]
            is_halo, _, _ = parse_halo_flags(record.flags)
            _, extent = self.chunk_box(grid_index)
            if not is_halo:
                key = (record.offset, record.length, record.codec, extent)
                if key in payload_slot:
                    slot_of[grid_index] = payload_slot[key]
                    continue
                payload_slot[key] = len(slot_grids)
            slot_of[grid_index] = len(slot_grids)
            slot_grids.append(grid_index)

        options_of = self._meta.get("compressor_options", {})
        dtype_str = str(self.dtype)

        def build_task(grid_index, payload, scratch_spec, plane_specs, context,
                       want_context):
            record = self._index[self.linear_index(grid_index)]
            _, extent = self.chunk_box(grid_index)
            return (
                payload,
                record.codec,
                extent,
                self.error_bound,
                dtype_str,
                dict(options_of.get(record.codec, {})),
                scratch_spec,
                slot_of[grid_index],
                plane_specs,
                context,
                want_context,
            )

        wave0 = []
        wave1 = []
        for grid_index in slot_grids:
            record = self._index[self.linear_index(grid_index)]
            is_halo, _, _ = parse_halo_flags(record.flags)
            (wave1 if is_halo else wave0).append(grid_index)

        out = np.empty(
            tuple(stop - start for start, stop in bounds), dtype=self.dtype
        )
        contexts: Dict[int, object] = {}
        with SharedArraySession() as session, WorkerPool(parallel) as pool:
            scratch_spec, scratch = session.allocate(
                (len(slot_grids),) + tuple(chunk_shape), self.dtype
            )
            with self._open_data() as handle, obs_span(
                "store.read.parallel",
                "store",
                chunks=len(slot_grids),
                anchors=len(wave0),
                halo=len(wave1),
            ):
                tasks = []
                for grid_index in wave0:
                    record = self._index[self.linear_index(grid_index)]
                    payload = self._read_payload(handle, record)
                    # Anchors double as entropy-context references in a
                    # halo store; deriving the context in the same decode
                    # avoids a second pass (the serial path's heuristic).
                    tasks.append(
                        build_task(
                            grid_index, payload, scratch_spec, None, None,
                            self.halo,
                        )
                    )
                with obs_span("store.decode_wave", "store", wave=0, chunks=len(tasks)):
                    for slot, context in pool.map(_decode_chunk_shm, tasks):
                        contexts[slot] = context

                tasks = []
                for grid_index in wave1:
                    record = self._index[self.linear_index(grid_index)]
                    _, axes_mask, ref_axis = parse_halo_flags(record.flags)
                    plane_specs: List[Optional[tuple]] = [None] * len(shape)
                    for axis in range(len(shape)):
                        if not axes_mask & (1 << axis):
                            continue
                        if grid_index[axis] == 0:
                            raise StoreCorruptionError(
                                f"halo chunk at grid {grid_index} references a "
                                f"neighbour beyond the array edge (axis {axis})"
                            )
                        neighbour = tuple(
                            g - 1 if a == axis else g
                            for a, g in enumerate(grid_index)
                        )
                        if self._index[self.linear_index(neighbour)].flags:
                            raise StoreCorruptionError(
                                f"halo chunk at grid {grid_index} references "
                                f"the non-anchor chunk at grid {neighbour}"
                            )
                        _, n_extent = self.chunk_box(neighbour)
                        plane_specs[axis] = (slot_of[neighbour],) + tuple(
                            n_extent[a] - 1 if a == axis else slice(0, n_extent[a])
                            for a in range(len(shape))
                        )
                    context = None
                    if ref_axis is not None:
                        neighbour = tuple(
                            g - 1 if a == ref_axis else g
                            for a, g in enumerate(grid_index)
                        )
                        context = contexts.get(slot_of[neighbour])
                    payload = self._read_payload(handle, record)
                    tasks.append(
                        build_task(
                            grid_index, payload, scratch_spec, plane_specs,
                            context, False,
                        )
                    )
                with obs_span("store.decode_wave", "store", wave=1, chunks=len(tasks)):
                    pool.map(_decode_chunk_shm, tasks)

            for grid_index in grid_indices:
                chunk_offset, chunk_extent = self.chunk_box(grid_index)
                slot = slot_of[grid_index]
                src = [slot]
                dst = []
                for (start, stop), o, extent in zip(bounds, chunk_offset, chunk_extent):
                    lo = max(start, o)
                    hi = min(stop, o + extent)
                    src.append(slice(lo - o, hi - o))
                    dst.append(slice(lo - start, hi - start))
                out[tuple(dst)] = scratch[tuple(src)]
            del scratch

        report = ReadReport(
            region=tuple(bounds),
            chunks_total=len(self._index),
            chunks_intersecting=len(grid_indices),
            chunks_decoded=len(slot_grids),
        )
        if drop_axes:
            out = out.reshape(
                tuple(
                    s
                    for axis, s in enumerate(out.shape)
                    if axis not in drop_axes
                )
            )
        return out, report

    def _read_payload(self, handle, record: IndexRecord) -> bytes:
        """Read and CRC-check one chunk's payload bytes."""

        handle.seek(record.offset)
        payload = handle.read(record.length)
        if len(payload) != record.length:
            raise StoreCorruptionError(
                f"truncated chunk payload: wanted {record.length} bytes at "
                f"offset {record.offset}, got {len(payload)}"
            )
        if zlib.crc32(payload) != record.checksum:
            raise StoreCorruptionError(
                f"chunk checksum mismatch at offset {record.offset} "
                f"(codec {record.codec})"
            )
        return payload

    def _decode_chunk(
        self,
        handle,
        record: IndexRecord,
        chunk_extent: Tuple[int, ...],
        halo: Optional[TileHalo] = None,
        want_context: bool = False,
    ):
        """Decode one payload; returns ``(values, entropy_context_or_None)``."""

        with obs_span(
            "store.decode_chunk", "store", codec=record.codec, nbytes=record.length
        ):
            return self._decode_chunk_inner(
                handle, record, chunk_extent, halo, want_context
            )

    def _decode_chunk_inner(
        self,
        handle,
        record: IndexRecord,
        chunk_extent: Tuple[int, ...],
        halo: Optional[TileHalo],
        want_context: bool,
    ):
        payload = self._read_payload(handle, record)
        if record.codec == RAW_CODEC:
            expected = int(np.prod(chunk_extent)) * 8
            if len(payload) != expected:
                raise StoreCorruptionError(
                    f"raw chunk payload of {len(payload)} bytes, expected {expected}"
                )
            values = np.frombuffer(payload, dtype="<f8").reshape(chunk_extent)
            return np.asarray(values, dtype=self.dtype), None
        options = self._meta.get("compressor_options", {}).get(record.codec, {})
        codec = PressioCompressor(
            record.codec,
            CompressorOptions(error_bound=self.error_bound, extra=dict(options)),
        )
        compressed = CompressedField(
            data=payload,
            original_shape=chunk_extent,
            original_dtype=self.dtype,
            compressor=record.codec,
            error_bound=self.error_bound,
        )
        if want_context:
            values, context = codec.decompress_with_context(compressed, halo=halo)
        else:
            values, context = codec.decompress(compressed, halo=halo), None
        if tuple(values.shape) != chunk_extent:
            raise StoreCorruptionError(
                f"chunk decoded to shape {values.shape}, expected {chunk_extent}"
            )
        return np.asarray(values, dtype=self.dtype), context

    # -- inspection ------------------------------------------------------
    def info(self) -> Dict:
        """JSON-friendly summary of this snapshot (the serve ``info``)."""

        shape = self.shape
        codec_histogram: Dict[str, int] = {}
        for record in self._index:
            codec_histogram[record.codec] = codec_histogram.get(record.codec, 0) + 1
        original = (
            int(np.prod(shape)) * self.dtype.itemsize if shape is not None else 0
        )
        compressed = sum(record.length for record in self._index)
        stored = sum(
            length
            for (_, length) in {(r.offset, r.length) for r in self._index}
        )
        live = live_payload_nbytes(self._index)
        data_file = self.data_nbytes
        return {
            "shape": list(shape) if shape is not None else None,
            "dtype": str(self.dtype),
            "chunk_shape": list(self.chunk_shape) if self.chunk_shape else None,
            "n_chunks": self.n_chunks,
            "codec_policy": self.codec_policy,
            "error_bound": self.error_bound,
            "halo": self.halo,
            "halo_chunks": sum(1 for record in self._index if record.flags),
            "generation": self.generation,
            "original_nbytes": original,
            "compressed_nbytes": compressed,
            "stored_nbytes": stored,
            "data_file_nbytes": data_file,
            "orphaned_nbytes": max(0, data_file - live),
            "compression_ratio": (
                original / compressed if compressed else float("inf")
            ),
            "codec_histogram": codec_histogram,
        }
