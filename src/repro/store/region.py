"""Textual region syntax shared by the CLI, the serve layer and clients.

A region selects a step-1 subarray of a stored N-d array, one
comma-separated component per axis: ``start:stop`` slices (either side
may be omitted, negative indices follow NumPy), or a bare integer that
drops the axis.  Trailing axes may be omitted and read fully.  Examples:

* ``"0:32,0:32,16:48"`` — a 32x32x32 box of a 3D volume
* ``"5"``               — plane 5 of the leading axis
* ``":,-16:"``          — the last 16 columns of every row
* ``""``                — the full array

:func:`parse_region_text` and :func:`format_region` are exact inverses on
normalised regions, so a region can round-trip through a URL query
parameter or a command line without ambiguity.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

__all__ = ["parse_region_text", "format_region"]

RegionEntry = Union[int, slice]


def parse_region_text(text: Optional[str]) -> Optional[Tuple[RegionEntry, ...]]:
    """Parse ``'0:32,5,16:'`` into a tuple of slices/ints (None = full).

    Raises :class:`ValueError` on malformed components (the CLI converts
    this to a usage error, the server to HTTP 400).
    """

    if text is None or text.strip() == "":
        return None
    region = []
    for part in text.split(","):
        part = part.strip()
        if ":" in part:
            pieces = part.split(":")
            if len(pieces) != 2:
                raise ValueError(f"bad region component {part!r} (use start:stop)")
            try:
                start = int(pieces[0]) if pieces[0] else None
                stop = int(pieces[1]) if pieces[1] else None
            except ValueError as exc:
                raise ValueError(f"bad region component {part!r}: {exc}") from exc
            region.append(slice(start, stop))
        else:
            try:
                region.append(int(part))
            except ValueError as exc:
                raise ValueError(f"bad region component {part!r}: {exc}") from exc
    return tuple(region)


def format_region(region) -> str:
    """Inverse of :func:`parse_region_text` (``None`` formats to ``""``)."""

    if region is None:
        return ""
    if not isinstance(region, tuple):
        region = (region,)
    parts = []
    for spec in region:
        if isinstance(spec, slice):
            if spec.step not in (None, 1):
                raise ValueError("regions support step-1 slices only")
            start = "" if spec.start is None else str(int(spec.start))
            stop = "" if spec.stop is None else str(int(spec.stop))
            parts.append(f"{start}:{stop}")
        else:
            parts.append(str(int(spec)))
    return ",".join(parts)
