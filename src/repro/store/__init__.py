"""Chunked compressed array store (zarr-style persistence layer).

The rest of the repository measures compression in one-shot experiments:
compress a field, record the ratio, throw the bytes away.  This package
keeps the bytes — an N-d float array is sharded into fixed-size chunks,
each chunk is compressed independently with any registry codec, and the
result is persisted as a small directory:

```
store/
  meta.json    # shape, dtype, chunk shape, bound, policy, per-chunk stats
  index.bin    # binary chunk index: offset / length / codec / checksum
  chunks.bin   # concatenated compressed chunk payloads
```

Random-access partial reads decode **only** the chunks intersecting the
requested region, and the per-chunk codec can be chosen adaptively by the
paper's statistics (block-sampling CR estimation), turning the selection
loop of :mod:`repro.baselines.adaptive_selection` into infrastructure.

Public API: :class:`ArrayStore` (create / open / write / read / append /
compact / info), :class:`StoreSnapshot` (immutable concurrent-reader-safe
read views, see :mod:`repro.store.snapshot`), the region text syntax
(:func:`parse_region_text` / :func:`format_region`), the codec policies
(:func:`fixed`, :func:`adaptive`, :func:`best`, :func:`make_policy`) and
the index format helpers in :mod:`repro.store.format`.
"""

from repro.store.array_store import (
    ArrayStore,
    ChunkRecord,
    ReadReport,
    default_store_cache,
)
from repro.store.format import (
    INDEX_VERSION,
    IndexRecord,
    StoreCorruptionError,
    StoreFormatError,
    pack_index,
    unpack_index,
)
from repro.store.region import format_region, parse_region_text
from repro.store.snapshot import StoreSnapshot, load_store_state
from repro.store.policy import (
    AdaptivePolicy,
    BestPolicy,
    CodecChoice,
    CodecPolicy,
    FixedPolicy,
    adaptive,
    best,
    fixed,
    make_policy,
)

__all__ = [
    "ArrayStore",
    "ChunkRecord",
    "ReadReport",
    "StoreSnapshot",
    "load_store_state",
    "parse_region_text",
    "format_region",
    "default_store_cache",
    "IndexRecord",
    "INDEX_VERSION",
    "StoreFormatError",
    "StoreCorruptionError",
    "pack_index",
    "unpack_index",
    "CodecPolicy",
    "CodecChoice",
    "FixedPolicy",
    "AdaptivePolicy",
    "BestPolicy",
    "fixed",
    "adaptive",
    "best",
    "make_policy",
]
