"""On-disk binary index format of the chunked array store.

The index is the only binary metadata file of a store; everything else is
JSON (``meta.json``) or raw compressed payloads (``chunks.bin``).  It maps
every chunk — in C scan order over the chunk grid — to the byte range of
its payload inside ``chunks.bin``, the codec that produced the payload and
a CRC-32 of the payload bytes:

```
header  (16 bytes):  magic "RPST" | version u16 | flags u16 | n_chunks u64
record  (32 bytes):  offset u64 | length u64 | codec char[8] | crc32 u32 | reserved u32
```

All integers are little-endian.  Codec names are ASCII, NUL-padded to 8
bytes.  Deduplicated chunks (identical payload bytes) simply share an
``(offset, length)`` range, so the format needs no separate dedup table.
The layout is pinned by a golden file in the test-suite
(``tests/store/data/index_golden.bin``); any change must bump
``INDEX_VERSION`` and keep :func:`unpack_index` reading version 1.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Sequence

__all__ = [
    "INDEX_MAGIC",
    "INDEX_VERSION",
    "IndexRecord",
    "StoreFormatError",
    "StoreCorruptionError",
    "pack_index",
    "unpack_index",
]

INDEX_MAGIC = b"RPST"
INDEX_VERSION = 1

_HEADER = struct.Struct("<4sHHQ")
_RECORD = struct.Struct("<QQ8sII")
_CODEC_BYTES = 8


class StoreFormatError(RuntimeError):
    """Malformed store metadata (bad magic, version, sizes, codec names)."""


class StoreCorruptionError(StoreFormatError):
    """Store data that fails an integrity check (checksums, truncation)."""


@dataclass(frozen=True)
class IndexRecord:
    """One chunk's entry in the binary index.

    Attributes
    ----------
    offset, length:
        Byte range of the chunk payload inside ``chunks.bin``.
    codec:
        Registry name of the codec that produced the payload.
    checksum:
        CRC-32 (:func:`zlib.crc32`) of the payload bytes.
    """

    offset: int
    length: int
    codec: str
    checksum: int


def _encode_codec(codec: str) -> bytes:
    raw = codec.encode("ascii")
    if not raw or len(raw) > _CODEC_BYTES:
        raise StoreFormatError(
            f"codec name {codec!r} must be 1..{_CODEC_BYTES} ASCII bytes"
        )
    return raw.ljust(_CODEC_BYTES, b"\0")


def pack_index(records: Sequence[IndexRecord]) -> bytes:
    """Serialise the chunk index (header + one record per chunk)."""

    out = bytearray(_HEADER.pack(INDEX_MAGIC, INDEX_VERSION, 0, len(records)))
    for record in records:
        if record.offset < 0 or record.length < 0:
            raise StoreFormatError(
                f"negative offset/length in index record {record!r}"
            )
        out.extend(
            _RECORD.pack(
                int(record.offset),
                int(record.length),
                _encode_codec(record.codec),
                int(record.checksum) & 0xFFFFFFFF,
                0,
            )
        )
    return bytes(out)


def unpack_index(blob: bytes) -> List[IndexRecord]:
    """Parse a serialised chunk index, validating structure and sizes."""

    if len(blob) < _HEADER.size:
        raise StoreFormatError(
            f"index too short for its header ({len(blob)} bytes)"
        )
    magic, version, flags, n_chunks = _HEADER.unpack_from(blob, 0)
    if magic != INDEX_MAGIC:
        raise StoreFormatError(f"bad index magic {magic!r}")
    if version != INDEX_VERSION:
        raise StoreFormatError(
            f"unsupported index version {version} (expected {INDEX_VERSION})"
        )
    if flags != 0:
        raise StoreFormatError(f"unsupported index flags {flags:#06x}")
    expected = _HEADER.size + n_chunks * _RECORD.size
    if len(blob) != expected:
        raise StoreCorruptionError(
            f"index length {len(blob)} != expected {expected} for {n_chunks} chunks"
        )
    records: List[IndexRecord] = []
    pos = _HEADER.size
    for _ in range(n_chunks):
        offset, length, codec_raw, checksum, _reserved = _RECORD.unpack_from(blob, pos)
        pos += _RECORD.size
        codec = codec_raw.rstrip(b"\0").decode("ascii", errors="strict")
        if not codec:
            raise StoreFormatError("empty codec name in index record")
        records.append(
            IndexRecord(
                offset=offset, length=length, codec=codec, checksum=checksum
            )
        )
    return records
