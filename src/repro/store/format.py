"""On-disk binary index format of the chunked array store.

The index is the only binary metadata file of a store; everything else is
JSON (``meta.json``) or raw compressed payloads (``chunks.bin``).  It maps
every chunk — in C scan order over the chunk grid — to the byte range of
its payload inside ``chunks.bin``, the codec that produced the payload and
a CRC-32 of the payload bytes:

```
header  (16 bytes):  magic "RPST" | version u16 | flags u16 | n_chunks u64
record  (32 bytes):  offset u64 | length u64 | codec char[8] | crc32 u32 | flags u32
```

All integers are little-endian.  Codec names are ASCII, NUL-padded to 8
bytes.  Deduplicated chunks (identical payload bytes) simply share an
``(offset, length)`` range, so the format needs no separate dedup table.

Version 1 kept the record's trailing u32 reserved (always zero).  Version
2 repurposes it as per-chunk **halo flags** (same 32-byte layout): bit 0
marks a halo-coded chunk, bits 1-3 which axes contributed a neighbour
plane, bits 4-6 the entropy-context reference axis plus one (0 = none).
``pack_index`` emits version 1 whenever no record carries flags, so
halo-off stores stay bit-identical to the pinned v1 golden file
(``tests/store/data/index_golden.bin``); :func:`unpack_index` reads both
versions.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Sequence

__all__ = [
    "INDEX_MAGIC",
    "INDEX_VERSION",
    "INDEX_VERSION_HALO",
    "IndexRecord",
    "StoreFormatError",
    "StoreCorruptionError",
    "pack_index",
    "unpack_index",
    "halo_flags",
    "parse_halo_flags",
]

INDEX_MAGIC = b"RPST"
INDEX_VERSION = 1
#: Version emitted when any record carries halo flags.
INDEX_VERSION_HALO = 2

_HEADER = struct.Struct("<4sHHQ")
_RECORD = struct.Struct("<QQ8sII")
_CODEC_BYTES = 8

#: Record-flag layout (v2): halo bit, 3 plane-axis bits, 3 reference bits.
_FLAG_HALO = 1
_AXES_SHIFT = 1
_AXES_MASK = 0b111
_REF_SHIFT = 4
_REF_MASK = 0b111


def halo_flags(axes_mask: int, ref_axis: int | None) -> int:
    """Pack a halo chunk's decode dependencies into the record flags."""

    if axes_mask < 0 or axes_mask > _AXES_MASK:
        raise StoreFormatError(f"halo axes mask {axes_mask} out of range")
    if ref_axis is not None and not 0 <= ref_axis < 3:
        raise StoreFormatError(f"halo reference axis {ref_axis} out of range")
    reference = 0 if ref_axis is None else ref_axis + 1
    return _FLAG_HALO | (axes_mask << _AXES_SHIFT) | (reference << _REF_SHIFT)


def parse_halo_flags(flags: int):
    """Inverse of :func:`halo_flags`: ``(halo, axes_mask, ref_axis)``."""

    if not flags & _FLAG_HALO:
        return False, 0, None
    axes_mask = (flags >> _AXES_SHIFT) & _AXES_MASK
    reference = (flags >> _REF_SHIFT) & _REF_MASK
    return True, axes_mask, (reference - 1 if reference else None)


class StoreFormatError(RuntimeError):
    """Malformed store metadata (bad magic, version, sizes, codec names)."""


class StoreCorruptionError(StoreFormatError):
    """Store data that fails an integrity check (checksums, truncation)."""


@dataclass(frozen=True)
class IndexRecord:
    """One chunk's entry in the binary index.

    Attributes
    ----------
    offset, length:
        Byte range of the chunk payload inside ``chunks.bin``.
    codec:
        Registry name of the codec that produced the payload.
    checksum:
        CRC-32 (:func:`zlib.crc32`) of the payload bytes.
    flags:
        Per-chunk halo flags (see :func:`halo_flags`); 0 for chunks that
        decode standalone.
    """

    offset: int
    length: int
    codec: str
    checksum: int
    flags: int = 0


def _encode_codec(codec: str) -> bytes:
    raw = codec.encode("ascii")
    if not raw or len(raw) > _CODEC_BYTES:
        raise StoreFormatError(
            f"codec name {codec!r} must be 1..{_CODEC_BYTES} ASCII bytes"
        )
    return raw.ljust(_CODEC_BYTES, b"\0")


def pack_index(records: Sequence[IndexRecord]) -> bytes:
    """Serialise the chunk index (header + one record per chunk).

    Emits version 1 (the pinned legacy layout) when no record carries
    flags, version 2 otherwise — same byte layout either way.
    """

    version = (
        INDEX_VERSION_HALO
        if any(record.flags for record in records)
        else INDEX_VERSION
    )
    out = bytearray(_HEADER.pack(INDEX_MAGIC, version, 0, len(records)))
    for record in records:
        if record.offset < 0 or record.length < 0:
            raise StoreFormatError(
                f"negative offset/length in index record {record!r}"
            )
        if record.flags < 0 or record.flags > 0xFFFFFFFF:
            raise StoreFormatError(f"flags out of range in index record {record!r}")
        out.extend(
            _RECORD.pack(
                int(record.offset),
                int(record.length),
                _encode_codec(record.codec),
                int(record.checksum) & 0xFFFFFFFF,
                int(record.flags),
            )
        )
    return bytes(out)


def unpack_index(blob: bytes) -> List[IndexRecord]:
    """Parse a serialised chunk index, validating structure and sizes."""

    if len(blob) < _HEADER.size:
        raise StoreFormatError(
            f"index too short for its header ({len(blob)} bytes)"
        )
    magic, version, flags, n_chunks = _HEADER.unpack_from(blob, 0)
    if magic != INDEX_MAGIC:
        raise StoreFormatError(f"bad index magic {magic!r}")
    if version not in (INDEX_VERSION, INDEX_VERSION_HALO):
        raise StoreFormatError(
            f"unsupported index version {version} "
            f"(expected {INDEX_VERSION} or {INDEX_VERSION_HALO})"
        )
    if flags != 0:
        raise StoreFormatError(f"unsupported index flags {flags:#06x}")
    expected = _HEADER.size + n_chunks * _RECORD.size
    if len(blob) != expected:
        raise StoreCorruptionError(
            f"index length {len(blob)} != expected {expected} for {n_chunks} chunks"
        )
    records: List[IndexRecord] = []
    pos = _HEADER.size
    for _ in range(n_chunks):
        offset, length, codec_raw, checksum, record_flags = _RECORD.unpack_from(
            blob, pos
        )
        pos += _RECORD.size
        codec = codec_raw.rstrip(b"\0").decode("ascii", errors="strict")
        if not codec:
            raise StoreFormatError("empty codec name in index record")
        if version == INDEX_VERSION and record_flags != 0:
            raise StoreFormatError(
                "non-zero record flags in a version-1 index"
            )
        records.append(
            IndexRecord(
                offset=offset,
                length=length,
                codec=codec,
                checksum=checksum,
                flags=record_flags,
            )
        )
    return records
