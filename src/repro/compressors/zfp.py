"""ZFP-like transform-based error-bounded compressor.

Mirrors the structure of ZFP's fixed-accuracy mode as described in the
paper's Section II-A:

1. the 2D field is partitioned into 4x4 blocks;
2. each block is converted to a *block-floating-point* representation: the
   block's values are normalised by a per-block power-of-two exponent
   (``emax``), so every block lives on the same [-1, 1] scale;
3. a separable near-orthogonal transform decorrelates the block (the
   orthonormal DCT here; see :mod:`repro.compressors.transform`);
4. coefficients are quantized with a step tied to the absolute error
   tolerance *and the block exponent* — the block-floating-point analogue
   of ZFP truncating low-order bit planes — so high-magnitude blocks keep
   more precision, exactly as in ZFP's accuracy mode;
5. the quantized coefficients are entropy coded (sequency-major ordering
   followed by the run-length + Huffman backend, standing in for ZFP's
   embedded group-testing coder).

Error-bound argument
--------------------
With an orthonormal transform, quantizing every coefficient of a block
with step ``2*delta`` changes each coefficient by at most ``delta``, hence
the L2 norm of the coefficient perturbation is at most
``block_size * delta`` (16 coefficients) and, by orthonormality, so is the
L2 norm (and therefore the max norm) of the reconstruction error in the
normalised domain.  Scaling back by ``2**emax`` gives a point-wise error of
at most ``block_size * delta * 2**emax``; choosing
``delta = tolerance * 2**-emax / block_size`` therefore guarantees the
absolute error bound.  The compressor additionally verifies the bound on
its own reconstruction before returning.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

from repro.compressors.base import CompressedField, Compressor, CompressorError, LosslessBackend
from repro.compressors.transform import (
    forward_block_transform,
    inverse_block_transform,
    sequency_order,
)
from repro.encoding.varint import decode_varint, encode_varint
from repro.utils.blocking import block_view, pad_to_multiple, reassemble_blocks
from repro.utils.validation import ensure_2d, ensure_float_array

__all__ = ["ZFPCompressor"]

_MAGIC = b"ZFR1"
#: Symbol offset so Huffman sees non-negative symbols; codes are clipped to
#: this radius (beyond it the block falls back to exact storage).
_CODE_RADIUS = 1 << 30


class ZFPCompressor(Compressor):
    """ZFP-like transform compressor (fixed-accuracy mode).

    Parameters
    ----------
    error_bound:
        Absolute error tolerance.
    block_size:
        Block edge length (4 in ZFP).
    backend:
        Lossless backend for the coefficient code stream.
    """

    name = "zfp"

    def __init__(
        self,
        error_bound: float = 1e-3,
        *,
        block_size: int = 4,
        backend: str = "huffman",
    ) -> None:
        super().__init__(error_bound)
        if block_size < 2:
            raise ValueError("block_size must be >= 2")
        self.block_size = int(block_size)
        self.backend = LosslessBackend(backend)

    # ------------------------------------------------------------------
    def _coefficient_step(self, emax: np.ndarray) -> np.ndarray:
        """Quantization step (per block) in the *normalised* domain."""

        # delta = tol * 2^-emax / block_size, step = 2*delta; see module
        # docstring for the error argument.
        delta = self.error_bound * np.exp2(-emax.astype(np.float64)) / self.block_size
        return 2.0 * delta

    # ------------------------------------------------------------------
    def compress(self, field: np.ndarray) -> CompressedField:
        original = ensure_2d(field, "field")
        original_dtype = np.asarray(field).dtype
        values = ensure_float_array(original, "field")
        if not np.all(np.isfinite(values)):
            raise CompressorError("zfp: field contains non-finite values")

        padded, original_shape = pad_to_multiple(values, self.block_size)
        blocks4d = block_view(padded, self.block_size)
        nbi, nbj, bs, _ = blocks4d.shape
        blocks = blocks4d.reshape(nbi * nbj, bs, bs)
        n_blocks = blocks.shape[0]

        # Block-floating-point exponent: smallest power of two >= max |value|.
        block_max = np.abs(blocks).max(axis=(1, 2))
        emax = np.zeros(n_blocks, dtype=np.int64)
        nonzero = block_max > 0
        emax[nonzero] = np.ceil(np.log2(block_max[nonzero])).astype(np.int64)

        # Values whose magnitude is already below the tolerance compress to
        # an all-zero block regardless; flag them so the exponent side
        # channel stays small.
        negligible = block_max <= self.error_bound
        normalised = np.zeros_like(blocks)
        scale = np.exp2(-emax.astype(np.float64))
        normalised[~negligible] = blocks[~negligible] * scale[~negligible, None, None]

        coefficients = forward_block_transform(normalised)
        step = self._coefficient_step(emax)
        codes = np.zeros_like(coefficients, dtype=np.int64)
        active = ~negligible
        codes[active] = np.rint(
            coefficients[active] / step[active, None, None]
        ).astype(np.int64)

        # Blocks whose codes exceed the radius (possible only for extreme
        # tolerance/magnitude combinations) are stored exactly.
        exact_mask = np.zeros(n_blocks, dtype=bool)
        overflow = np.abs(codes).max(axis=(1, 2)) > _CODE_RADIUS
        exact_mask |= overflow
        codes[exact_mask] = 0

        # Reconstruction (identical computation to the decompressor).
        recon_blocks = self._reconstruct_blocks(codes, emax, negligible)
        block_errors = np.abs(recon_blocks - blocks).max(axis=(1, 2))
        violating = block_errors > self.error_bound
        exact_mask |= violating
        codes[exact_mask] = 0
        recon_blocks[exact_mask] = blocks[exact_mask]

        # ------------------------------------------------------------------
        # container
        # ------------------------------------------------------------------
        payload = bytearray()
        payload.extend(_MAGIC)
        payload.extend(encode_varint(original_shape[0]))
        payload.extend(encode_varint(original_shape[1]))
        payload.extend(encode_varint(self.block_size))
        payload.extend(struct.pack("<d", self.error_bound))
        payload.extend(encode_varint(nbi))
        payload.extend(encode_varint(nbj))

        flags = np.zeros(n_blocks, dtype=np.uint8)
        flags[negligible] = 1
        flags[exact_mask] = 2
        flag_bytes = flags.tobytes()
        payload.extend(encode_varint(len(flag_bytes)))
        payload.extend(flag_bytes)

        emax_symbols = emax - emax.min()
        payload.extend(encode_varint(int(emax.min() + 2**20)))  # offset-shifted minimum
        emax_blob = self.backend.encode_symbols(emax_symbols)
        payload.extend(encode_varint(len(emax_blob)))
        payload.extend(emax_blob)

        # Sequency-major coefficient stream: coefficient index is the major
        # axis so that high-frequency (mostly zero) codes form long runs.
        rows, cols = sequency_order(bs)
        ordered = codes[:, rows, cols]  # (n_blocks, bs*bs)
        stream = ordered.T.ravel()  # coefficient-major
        symbols = stream + _CODE_RADIUS + 1
        code_blob = self.backend.encode_symbols(symbols)
        payload.extend(encode_varint(len(code_blob)))
        payload.extend(code_blob)

        exact_values = blocks[exact_mask].astype("<f8").tobytes()
        payload.extend(encode_varint(len(exact_values)))
        payload.extend(exact_values)

        reconstruction = reassemble_blocks(
            recon_blocks.reshape(nbi, nbj, bs, bs), original_shape
        )
        compressed = CompressedField(
            data=bytes(payload),
            original_shape=tuple(original_shape),
            original_dtype=original_dtype,
            compressor=self.name,
            error_bound=self.error_bound,
            reconstruction=reconstruction,
            extras={
                "negligible_block_fraction": float(negligible.mean()),
                "exact_block_fraction": float(exact_mask.mean()),
                "n_blocks": float(n_blocks),
            },
        )
        self.check_error_bound(values, reconstruction)
        return compressed

    # ------------------------------------------------------------------
    def _reconstruct_blocks(
        self, codes: np.ndarray, emax: np.ndarray, negligible: np.ndarray
    ) -> np.ndarray:
        step = self._coefficient_step(emax)
        coefficients = codes.astype(np.float64) * step[:, None, None]
        normalised = inverse_block_transform(coefficients)
        blocks = normalised * np.exp2(emax.astype(np.float64))[:, None, None]
        blocks[negligible] = 0.0
        return blocks

    # ------------------------------------------------------------------
    def decompress(self, compressed: CompressedField) -> np.ndarray:
        blob = compressed.data
        if blob[:4] != _MAGIC:
            raise CompressorError("not a ZFP-like container")
        pos = 4
        rows, pos = decode_varint(blob, pos)
        cols, pos = decode_varint(blob, pos)
        block_size, pos = decode_varint(blob, pos)
        (error_bound,) = struct.unpack_from("<d", blob, pos)
        pos += 8
        nbi, pos = decode_varint(blob, pos)
        nbj, pos = decode_varint(blob, pos)
        n_blocks = nbi * nbj
        bs = block_size

        flag_len, pos = decode_varint(blob, pos)
        flags = np.frombuffer(blob[pos : pos + flag_len], dtype=np.uint8).copy()
        pos += flag_len
        negligible = flags == 1
        exact_mask = flags == 2

        emax_min_shifted, pos = decode_varint(blob, pos)
        emax_min = emax_min_shifted - 2**20
        emax_len, pos = decode_varint(blob, pos)
        emax = self.backend.decode_symbols(blob[pos : pos + emax_len]) + emax_min
        pos += emax_len

        code_len, pos = decode_varint(blob, pos)
        symbols = self.backend.decode_symbols(blob[pos : pos + code_len])
        pos += code_len
        stream = symbols.astype(np.int64) - (_CODE_RADIUS + 1)
        ordered = stream.reshape(bs * bs, n_blocks).T
        seq_rows, seq_cols = sequency_order(bs)
        codes = np.zeros((n_blocks, bs, bs), dtype=np.int64)
        codes[:, seq_rows, seq_cols] = ordered

        exact_len, pos = decode_varint(blob, pos)
        exact_values = np.frombuffer(blob[pos : pos + exact_len], dtype="<f8")

        # Reuse the compressor's reconstruction path with the decoded bound.
        saved_bound = self.error_bound
        try:
            self.error_bound = float(error_bound)
            blocks = self._reconstruct_blocks(codes, emax.astype(np.int64), negligible)
        finally:
            self.error_bound = saved_bound
        if exact_mask.any():
            blocks[exact_mask] = exact_values.reshape(-1, bs, bs)
        field = reassemble_blocks(blocks.reshape(nbi, nbj, bs, bs), (rows, cols))
        return field
