"""ZFP-like transform-based error-bounded compressor.

Mirrors the structure of ZFP's fixed-accuracy mode as described in the
paper's Section II-A:

1. the field is partitioned into 4x4 blocks (2D) or 4x4x4 blocks (3D);
2. each block is converted to a *block-floating-point* representation: the
   block's values are normalised by a per-block power-of-two exponent
   (``emax``), so every block lives on the same [-1, 1] scale;
3. a separable near-orthogonal transform decorrelates the block (the
   orthonormal DCT here; see :mod:`repro.compressors.transform`);
4. coefficients are quantized with a step tied to the absolute error
   tolerance *and the block exponent* — the block-floating-point analogue
   of ZFP truncating low-order bit planes — so high-magnitude blocks keep
   more precision, exactly as in ZFP's accuracy mode;
5. the quantized coefficients are entropy coded in a **bit-plane-grouped
   sequency-partitioned stream** (standing in for ZFP's embedded
   group-testing coder): sequency planes are grouped by the bit width of
   their zigzag codes, each group is one backend stream with a short
   alphabet, and all-zero groups cost no stream at all.

Every per-block stage (exponents, normalisation, the safe coefficient
quantization, plane grouping) lives in the shared dimension-general array
engine in :mod:`repro.compressors.transform`; this module owns only the
container formats.  2D fields use the ``ZFR2`` layout (bytes unchanged by
the N-d generalisation); 3D volumes use the ``ZFV1`` layout, which stores
the dimensionality explicitly and streams ``bs**3`` sequency planes.
Side channels are array-encoded like the SZ container's: block flags and
active-block exponents go through the lossless backend, and only *active*
blocks (neither negligible nor exact) carry coefficients.

Error-bound argument
--------------------
With an orthonormal transform, quantizing every coefficient of a block
with step ``2*delta`` changes each coefficient by at most ``delta``, hence
the L2 norm of the coefficient perturbation is at most
``sqrt(bs**d) * delta`` (``bs**d`` coefficients) and, by orthonormality,
so is the L2 norm (and therefore the max norm) of the reconstruction error
in the normalised domain.  Scaling back by ``2**emax`` gives a point-wise
error of at most ``bs**(d/2) * delta * 2**emax``; choosing
``delta = tolerance * 2**-emax / bs**(d/2)`` therefore guarantees the
absolute error bound (for 2D, ``bs**(d/2)`` is exactly ``block_size``, the
factor the original 2D implementation used).  The compressor additionally
verifies the bound on its own reconstruction before returning.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compressors.base import CompressedField, Compressor, CompressorError, LosslessBackend
from repro.compressors.blocks import merge_field, partition_field
from repro.compressors.transform import (
    block_exponents,
    forward_block_transform,
    group_planes_by_width,
    inverse_block_transform,
    quantize_block_coefficients,
    sequency_order_nd,
    sequency_plane_widths,
    zigzag_decode,
    zigzag_encode,
)
from repro.encoding.varint import decode_varint, encode_varint
from repro.utils.validation import ensure_float_array, ensure_ndim

__all__ = ["ZFPCompressor"]

_MAGIC = b"ZFR2"
_MAGIC_VOLUME = b"ZFV1"
#: Halo-coded container magics: identical layout, but backend streams may
#: carry the table-free context tag and need the tile halo's entropy
#: context (the reference neighbour's symbol statistics) to decode.
_MAGIC_HALO = b"ZFR3"
_MAGIC_VOLUME_HALO = b"ZFV2"
#: Maximum |code|; blocks whose ratios exceed it fall back to exact storage.
_CODE_RADIUS = 1 << 30
#: Offset applied to the stored minimum exponent so the varint stays
#: non-negative for any float64-representable block magnitude.
_EMAX_OFFSET = 1 << 20

#: Block flag values stored in the per-block side channel.  ACTIVE blocks
#: are coded with the primary step (``delta = tol * 2^-emax / bs``, the
#: factor the 2D error argument proves); ACTIVE_FINE blocks (3D containers
#: only) failed the per-block verification at the primary step and carry
#: codes at the provable ``bs**(d/2)`` step instead.
_FLAG_ACTIVE = 0
_FLAG_NEGLIGIBLE = 1
_FLAG_EXACT = 2
_FLAG_ACTIVE_FINE = 3


class ZFPCompressor(Compressor):
    """ZFP-like transform compressor (fixed-accuracy mode, 2D + 3D).

    Parameters
    ----------
    error_bound:
        Absolute error tolerance.
    block_size:
        Block edge length (4 in ZFP, for both planes and volumes).
    backend:
        Lossless backend for the coefficient code stream.
    """

    name = "zfp"
    supports_halo = True

    def __init__(
        self,
        error_bound: float = 1e-3,
        *,
        block_size: int = 4,
        backend: str = "huffman",
    ) -> None:
        super().__init__(error_bound)
        if block_size < 2:
            raise ValueError("block_size must be >= 2")
        self.block_size = int(block_size)
        self.backend = LosslessBackend(backend)

    # ------------------------------------------------------------------
    @staticmethod
    def _coefficient_step(
        emax: np.ndarray,
        error_bound: float,
        ndim: int,
        block_size: int,
        *,
        fine: bool = False,
    ) -> np.ndarray:
        """Quantization step (per block) in the *normalised* domain.

        ``block_size`` is an argument (not read from ``self``) so the
        decompressor applies the block size decoded from the container —
        the containers stay self-describing even for a decoding instance
        configured with a different block size.

        The primary step uses ``delta = tol * 2^-emax / block_size`` — for
        2D this is exactly the provable ``bs**(d/2)`` factor of the
        orthonormality argument (see the module docstring).  For 3D it is
        a deliberate 1-bit-per-coefficient-cheaper heuristic: every block's
        reconstruction is verified during compression, and blocks that
        exceed the bound are re-coded with ``fine=True`` (the provable
        ``bs**(d/2)`` factor), so the hard guarantee is preserved.  The
        step can overflow to inf for subnormal-magnitude blocks under a
        far smaller bound; the quantizer flags such blocks for exact
        storage.
        """

        if fine:
            norm = float(block_size) ** (ndim / 2.0)
        else:
            norm = float(block_size)
        with np.errstate(over="ignore"):
            delta = error_bound * np.exp2(-emax.astype(np.float64)) / norm
            return 2.0 * delta

    # ------------------------------------------------------------------
    def compress(
        self,
        field: np.ndarray,
        *,
        halo=None,
        collect_context: bool = False,
    ) -> CompressedField:
        """Compress a field; ``halo.context`` enables table-free streams.

        ZFP's transform blocks are coded independently, so the halo's
        neighbour *planes* carry no usable prediction here (measured to
        hurt on rough data); what the tiled path loses against untiled
        coding is the per-tile entropy bootstrap, and that is exactly what
        the halo's :class:`~repro.encoding.context.EntropyContext`
        recovers.  ``collect_context`` attaches this tile's own context
        for downstream neighbours.
        """

        original = ensure_ndim(field, (2, 3), "field")
        original_dtype = np.asarray(field).dtype
        values = ensure_float_array(original, "field")
        ndim = values.ndim
        if not np.all(np.isfinite(values)):
            raise CompressorError("zfp: field contains non-finite values")
        halo_context = halo.context if halo is not None else None
        if halo_context is not None and not halo_context:
            halo_context = None

        blocks_nd, original_shape = partition_field(values, self.block_size)
        counts = blocks_nd.shape[:ndim]
        bs = self.block_size
        blocks = blocks_nd.reshape((int(np.prod(counts)),) + (bs,) * ndim)
        n_blocks = blocks.shape[0]

        emax, negligible, normalised = block_exponents(blocks, self.error_bound)
        coefficients = forward_block_transform(normalised)
        step = self._coefficient_step(emax, self.error_bound, ndim, bs)
        codes, exact_mask = quantize_block_coefficients(
            coefficients, step, ~negligible, _CODE_RADIUS
        )

        # Reconstruction (identical computation to the decompressor).
        fine_mask = np.zeros(n_blocks, dtype=bool)
        recon_blocks = self._reconstruct_blocks(
            codes, emax, negligible, self.error_bound, ndim, bs, fine=fine_mask
        )
        block_errors = np.abs(recon_blocks - blocks).max(
            axis=tuple(range(1, ndim + 1))
        )
        # Negated <= so NaN block errors (possible when emax itself sits at
        # the float range limit) count as violations.
        violating = ~(block_errors <= self.error_bound)

        if ndim > 2:
            # Two-tier step (3D containers): blocks the primary (heuristic)
            # step cannot hold within the bound are re-coded with the
            # provable ``bs**(d/2)`` step before falling back to exact
            # storage.  In 2D the two steps coincide, so the retry is
            # skipped and the legacy single-pass behaviour (and byte
            # stream) is preserved.
            retry = violating & ~exact_mask & ~negligible
            if retry.any():
                fine_step = self._coefficient_step(
                    emax, self.error_bound, ndim, bs, fine=True
                )
                fine_codes, fine_exact = quantize_block_coefficients(
                    coefficients, fine_step, retry, _CODE_RADIUS
                )
                # Re-decode and re-verify only the retried blocks; retries
                # are rare, the other blocks are already settled.
                candidates = np.flatnonzero(retry & ~fine_exact)
                if candidates.size:
                    recon_sub = self._reconstruct_blocks(
                        fine_codes[candidates],
                        emax[candidates],
                        np.zeros(candidates.size, dtype=bool),
                        self.error_bound,
                        ndim,
                        bs,
                        fine=np.ones(candidates.size, dtype=bool),
                    )
                    sub_errors = np.abs(recon_sub - blocks[candidates]).max(
                        axis=tuple(range(1, ndim + 1))
                    )
                    ok = sub_errors <= self.error_bound
                    good = candidates[ok]
                    codes[good] = fine_codes[good]
                    recon_blocks[good] = recon_sub[ok]
                    fine_mask[good] = True
                    violating[good] = False

        exact_mask |= violating
        codes[exact_mask] = 0
        recon_blocks[exact_mask] = blocks[exact_mask]
        fine_mask &= ~exact_mask

        flags = np.zeros(n_blocks, dtype=np.int64)
        flags[negligible] = _FLAG_NEGLIGIBLE
        flags[fine_mask] = _FLAG_ACTIVE_FINE
        flags[exact_mask] = _FLAG_EXACT
        active = (flags == _FLAG_ACTIVE) | (flags == _FLAG_ACTIVE_FINE)

        # ------------------------------------------------------------------
        # container
        # ------------------------------------------------------------------
        payload = bytearray()
        if ndim == 2:
            payload.extend(_MAGIC_HALO if halo_context is not None else _MAGIC)
        else:
            payload.extend(
                _MAGIC_VOLUME_HALO if halo_context is not None else _MAGIC_VOLUME
            )
            payload.extend(encode_varint(ndim))
        for length in original_shape:
            payload.extend(encode_varint(length))
        payload.extend(encode_varint(self.block_size))
        payload.extend(struct.pack("<d", self.error_bound))
        for count in counts:
            payload.extend(encode_varint(count))

        context_streams = [flags]
        flag_blob = self.backend.encode_symbols(flags, context=halo_context)
        payload.extend(encode_varint(len(flag_blob)))
        payload.extend(flag_blob)

        # Exponent side channel: active blocks only (negligible blocks
        # reconstruct to zero and exact blocks are stored verbatim).
        emax_active = emax[active]
        emax_min = int(emax_active.min()) if emax_active.size else 0
        payload.extend(encode_varint(emax_min + _EMAX_OFFSET))
        context_streams.append(emax_active - emax_min)
        emax_blob = self.backend.encode_symbols(
            emax_active - emax_min, context=halo_context
        )
        payload.extend(encode_varint(len(emax_blob)))
        payload.extend(emax_blob)

        # Sequency-partitioned coefficient stream: active blocks' codes are
        # zigzag-mapped, planes grouped by bit width, one short-alphabet
        # backend stream per group (plane-major within the group so the
        # near-zero high-frequency codes form long runs).
        seq = sequency_order_nd(bs, ndim)
        ordered = codes[active][(slice(None),) + seq]  # (n_active, bs**ndim)
        zigzag = zigzag_encode(ordered)
        groups = group_planes_by_width(sequency_plane_widths(zigzag))
        payload.extend(encode_varint(len(groups)))
        for start, end, width in groups:
            payload.extend(encode_varint(end - start))
            payload.extend(encode_varint(width))
            if width > 0:
                group_stream = zigzag[:, start:end].T.ravel()
                context_streams.append(group_stream)
                group_blob = self.backend.encode_symbols(
                    group_stream, context=halo_context
                )
                payload.extend(encode_varint(len(group_blob)))
                payload.extend(group_blob)

        exact_values = blocks[exact_mask].astype("<f8").tobytes()
        payload.extend(encode_varint(len(exact_values)))
        payload.extend(exact_values)

        reconstruction = merge_field(
            recon_blocks.reshape(counts + (bs,) * ndim), original_shape
        )
        compressed = CompressedField(
            data=bytes(payload),
            original_shape=tuple(original_shape),
            original_dtype=original_dtype,
            compressor=self.name,
            error_bound=self.error_bound,
            reconstruction=reconstruction,
            extras={
                "negligible_block_fraction": float(negligible.mean()),
                "exact_block_fraction": float(exact_mask.mean()),
                "fine_block_fraction": float(fine_mask.mean()),
                "n_blocks": float(n_blocks),
                "coefficient_stream_groups": float(len(groups)),
                "halo_coded": float(halo_context is not None),
            },
        )
        if collect_context:
            from repro.encoding.context import EntropyContext

            compressed.entropy_context = EntropyContext.from_streams(context_streams)
        self.check_error_bound(values, reconstruction)
        return compressed

    # ------------------------------------------------------------------
    def _reconstruct_blocks(
        self,
        codes: np.ndarray,
        emax: np.ndarray,
        negligible: np.ndarray,
        error_bound: float,
        ndim: int,
        block_size: int,
        fine: np.ndarray | None = None,
    ) -> np.ndarray:
        """Decode codes back to value blocks under an explicit bound.

        ``fine`` marks blocks coded with the provable (finer) step tier.
        The bound is an argument (not read from ``self``) so the
        decompressor can apply the bound decoded from the container
        without mutating compressor state — keeping instances reentrant
        and thread-safe.
        """

        step = self._coefficient_step(emax, error_bound, ndim, block_size)
        if fine is not None and fine.any():
            fine_step = self._coefficient_step(
                emax, error_bound, ndim, block_size, fine=True
            )
            step = np.where(fine, fine_step, step)
        expand = (slice(None),) + (None,) * ndim
        # Blocks at the extremes (inf step, emax at the float-range limit)
        # are flagged for exact storage by the caller and their values here
        # overwritten; suppress the transient overflow warnings they cause.
        with np.errstate(over="ignore", invalid="ignore"):
            coefficients = codes.astype(np.float64) * step[expand]
            normalised = inverse_block_transform(coefficients)
            blocks = normalised * np.exp2(emax.astype(np.float64))[expand]
        blocks[negligible] = 0.0
        return blocks

    # ------------------------------------------------------------------
    def decompress(self, compressed: CompressedField, *, halo=None) -> np.ndarray:
        return self._decode(compressed, halo, want_context=False)[0]

    def decompress_with_context(self, compressed: CompressedField, halo=None):
        return self._decode(compressed, halo, want_context=True)

    def _decode(self, compressed: CompressedField, halo, want_context: bool = False):
        blob = compressed.data
        magic = blob[:4]
        if magic not in (_MAGIC, _MAGIC_VOLUME, _MAGIC_HALO, _MAGIC_VOLUME_HALO):
            raise CompressorError("not a ZFP-like container")
        halo_context = None
        if magic in (_MAGIC_HALO, _MAGIC_VOLUME_HALO):
            if halo is None or halo.context is None:
                raise CompressorError(
                    "zfp: halo-coded container requires the tile halo's "
                    "entropy context to decode"
                )
            halo_context = halo.context
        pos = 4
        if magic in (_MAGIC, _MAGIC_HALO):
            ndim = 2
        else:
            ndim, pos = decode_varint(blob, pos)
            if ndim != 3:
                raise CompressorError(f"zfp: unsupported volume dimensionality {ndim}")
        shape = []
        for _ in range(ndim):
            length, pos = decode_varint(blob, pos)
            shape.append(length)
        original_shape = tuple(shape)
        block_size, pos = decode_varint(blob, pos)
        (error_bound,) = struct.unpack_from("<d", blob, pos)
        pos += 8
        counts = []
        for _ in range(ndim):
            count, pos = decode_varint(blob, pos)
            counts.append(count)
        counts = tuple(counts)
        n_blocks = int(np.prod(counts))
        bs = block_size
        n_planes = bs**ndim

        flag_len, pos = decode_varint(blob, pos)
        flags = self.backend.decode_symbols(
            blob[pos : pos + flag_len], context=halo_context
        )
        pos += flag_len
        if flags.size != n_blocks:
            raise CompressorError("zfp: block flag stream length mismatch")
        context_streams = [flags]
        negligible = flags == _FLAG_NEGLIGIBLE
        exact_mask = flags == _FLAG_EXACT
        fine_mask = flags == _FLAG_ACTIVE_FINE
        active = (flags == _FLAG_ACTIVE) | fine_mask
        n_active = int(active.sum())

        emax_min_shifted, pos = decode_varint(blob, pos)
        emax_min = emax_min_shifted - _EMAX_OFFSET
        emax_len, pos = decode_varint(blob, pos)
        emax_shifted = self.backend.decode_symbols(
            blob[pos : pos + emax_len], context=halo_context
        )
        context_streams.append(emax_shifted)
        emax_active = emax_shifted + emax_min
        pos += emax_len
        if emax_active.size != n_active:
            raise CompressorError("zfp: exponent stream length mismatch")
        emax = np.zeros(n_blocks, dtype=np.int64)
        emax[active] = emax_active

        n_groups, pos = decode_varint(blob, pos)
        zigzag = np.zeros((n_active, n_planes), dtype=np.int64)
        plane = 0
        for _ in range(n_groups):
            group_planes, pos = decode_varint(blob, pos)
            width, pos = decode_varint(blob, pos)
            if plane + group_planes > n_planes:
                raise CompressorError("zfp: coefficient plane groups exceed block size")
            if width > 0:
                group_len, pos = decode_varint(blob, pos)
                group = self.backend.decode_symbols(
                    blob[pos : pos + group_len], context=halo_context
                )
                pos += group_len
                if group.size != group_planes * n_active:
                    raise CompressorError("zfp: coefficient group length mismatch")
                context_streams.append(group)
                zigzag[:, plane : plane + group_planes] = group.reshape(
                    group_planes, n_active
                ).T
            plane += group_planes
        if plane != n_planes:
            raise CompressorError("zfp: coefficient plane groups do not cover the block")

        ordered = zigzag_decode(zigzag)
        seq = sequency_order_nd(bs, ndim)
        codes = np.zeros((n_blocks,) + (bs,) * ndim, dtype=np.int64)
        active_codes = np.zeros((n_active,) + (bs,) * ndim, dtype=np.int64)
        active_codes[(slice(None),) + seq] = ordered
        codes[active] = active_codes

        exact_len, pos = decode_varint(blob, pos)
        exact_values = np.frombuffer(blob[pos : pos + exact_len], dtype="<f8")
        if exact_values.size != int(exact_mask.sum()) * n_planes:
            raise CompressorError("zfp: exact-block side channel length mismatch")

        blocks = self._reconstruct_blocks(
            codes, emax, negligible, float(error_bound), ndim, bs, fine=fine_mask
        )
        if exact_mask.any():
            blocks[exact_mask] = exact_values.reshape((-1,) + (bs,) * ndim)
        field = merge_field(blocks.reshape(counts + (bs,) * ndim), original_shape)
        context = None
        if want_context:
            from repro.encoding.context import EntropyContext

            context = EntropyContext.from_streams(context_streams)
        return field, context
