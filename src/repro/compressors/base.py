"""Compressor interfaces and the shared compressed-container format.

Every compressor in this package implements the small
:class:`Compressor` interface:

* ``compress(field) -> CompressedField`` — produce a self-contained byte
  blob plus (optionally) the reconstruction computed as a by-product.  The
  real SZ also knows its reconstruction during compression; exposing it
  here lets the experiment pipeline compute quality metrics without paying
  for a separate decompression pass.
* ``decompress(blob) -> ndarray`` — reconstruct the field from the byte
  blob alone (used by the round-trip tests and by downstream users).

Compressors are configured with an **absolute error bound** (the mode used
throughout the paper); the invariant ``max|original - reconstruction| <=
error_bound`` is checked by the property-based test-suite for every
compressor.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.encoding.bitio import BitReader
from repro.encoding.rle import rle_decode, rle_encode
from repro.encoding.huffman import huffman_decode, huffman_encode
from repro.encoding.varint import decode_varint, encode_varint
from repro.encoding.zstd_like import zstd_like_compress, zstd_like_decompress
from repro.utils.validation import ensure_in

__all__ = [
    "CompressorError",
    "ErrorBoundExceededError",
    "CompressedField",
    "Compressor",
    "LosslessBackend",
]


class CompressorError(RuntimeError):
    """Base class for compressor failures."""


class ErrorBoundExceededError(CompressorError):
    """Raised when a reconstruction violates the configured error bound."""


@dataclass
class CompressedField:
    """A compressed field: the byte blob plus bookkeeping.

    Attributes
    ----------
    data:
        Self-contained compressed representation.
    original_shape:
        Shape of the uncompressed field.
    original_dtype:
        Dtype of the uncompressed field (CR is computed against its itemsize).
    compressor:
        Name of the producing compressor.
    error_bound:
        Absolute error bound the blob was produced with.
    reconstruction:
        Optional reconstruction computed during compression (not part of the
        persisted payload).
    extras:
        Free-form per-compressor diagnostics (e.g. fraction of unpredictable
        values for SZ, truncated bit planes for ZFP).
    entropy_context:
        Optional :class:`repro.encoding.context.EntropyContext` derived from
        this field's backend symbol streams (in-memory by-product, not part
        of the payload) — neighbouring tiles entropy code against it in
        halo mode.
    """

    data: bytes
    original_shape: tuple
    original_dtype: np.dtype
    compressor: str
    error_bound: float
    reconstruction: Optional[np.ndarray] = None
    extras: Dict[str, float] = field(default_factory=dict)
    entropy_context: Optional[object] = None

    @property
    def original_nbytes(self) -> int:
        """Size of the uncompressed field in bytes."""

        return int(np.prod(self.original_shape)) * np.dtype(self.original_dtype).itemsize

    @property
    def compressed_nbytes(self) -> int:
        """Size of the compressed blob in bytes."""

        return len(self.data)

    @property
    def compression_ratio(self) -> float:
        """Uncompressed size divided by compressed size (the paper's CR)."""

        if self.compressed_nbytes == 0:
            return float("inf")
        return self.original_nbytes / self.compressed_nbytes


class LosslessBackend:
    """Final lossless stage shared by the SZ-like and MGARD-like compressors.

    ``"huffman"`` (default) run-length codes the symbol stream and Huffman
    codes both the run values and run lengths — fully vectorised, fast.
    ``"zstd"`` additionally passes the entropy-coded body through the
    vectorized LZ77+Huffman :mod:`repro.encoding.zstd_like` pipeline, which
    mirrors the real SZ/MGARD (Huffman + Zstd) more closely.
    ``"raw"`` stores the symbols as fixed-width integers — the "no entropy
    coding" ablation.

    For the ``"huffman"`` and ``"zstd"`` backends the encoder also builds a
    plain fixed-width bit-packed candidate and keeps whichever is smaller.
    High-entropy code streams (rough data at tight error bounds) would
    otherwise pay a Huffman symbol-table overhead larger than the data
    itself; real entropy coders degrade to near-raw coding in that regime,
    and so does this one.  When the entropy lower bound alone proves that
    packing wins (wide near-uniform alphabets, e.g. the ZFP-like DC
    planes), the Huffman build is skipped outright.  The stream stays
    self-describing via a tag byte.
    """

    NAMES = ("huffman", "zstd", "raw")

    def __init__(self, name: str = "huffman") -> None:
        self.name = ensure_in(name, self.NAMES, "lossless backend")

    # -- encoding ------------------------------------------------------
    @staticmethod
    def _pack_fixed_width(values: np.ndarray, width: int) -> bytes:
        """Fixed-``width`` MSB-first bit packing of non-negative values.

        A single broadcasted shift expands every symbol into exactly
        ``width`` MSB-first bits — byte-identical to the general
        variable-width ``BitWriter.write_bits_array`` path, without its
        per-symbol repeat/cumsum machinery.  ``BitReader.read_bits_array``
        is the matching decoder.
        """

        if values.size == 0:
            return b""
        shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
        bits = (values.astype(np.uint64)[:, None] >> shifts[None, :]) & np.uint64(1)
        return np.packbits(bits.astype(np.uint8).ravel()).tobytes()

    @staticmethod
    def _encode_packed(symbols: np.ndarray) -> bytes:
        """Self-describing fixed-width packing of a symbol stream."""

        body = bytearray()
        body.extend(encode_varint(symbols.size))
        if symbols.size == 0:
            body.extend(encode_varint(0))
            return bytes(body)
        width = max(1, int(symbols.max()).bit_length())
        body.extend(encode_varint(width))
        body.extend(LosslessBackend._pack_fixed_width(symbols, width))
        return bytes(body)

    @staticmethod
    def _decode_packed(body: bytes) -> np.ndarray:
        count, pos = decode_varint(body, 0)
        width, pos = decode_varint(body, pos)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        reader = BitReader(body[pos:])
        return reader.read_bits_array(np.full(count, width, dtype=np.int64)).astype(np.int64)

    #: Run fraction above which run-length coding stops paying: almost every
    #: run has length 1, so the runs stream costs a second Huffman pass (and
    #: a second decode) for no size win — code the symbols directly instead.
    _RLE_RUN_FRACTION = 0.7

    def _encode_huffman_body(self, symbols: np.ndarray, values=None, runs=None) -> bytes:
        if values is None:
            values, runs = rle_encode(symbols)
        body = bytearray()
        values_blob = huffman_encode(values)
        runs_blob = huffman_encode(runs)
        body.extend(encode_varint(symbols.size))
        body.extend(encode_varint(len(values_blob)))
        body.extend(values_blob)
        body.extend(encode_varint(len(runs_blob)))
        body.extend(runs_blob)
        return bytes(body)

    @staticmethod
    def _encode_direct_body(symbols: np.ndarray) -> bytes:
        return bytes(encode_varint(symbols.size)) + huffman_encode(symbols)

    @staticmethod
    def _packed_beats_entropy_bound(symbols: np.ndarray) -> bool:
        """True when fixed-width packing provably beats any direct Huffman
        stream, so the tree build can be skipped outright.

        Any direct-Huffman candidate costs at least ``n*H/8`` payload bytes
        (entropy lower bound) plus 2 bytes per alphabet entry of symbol
        table.  Wide, near-uniform streams (e.g. the DC-side coefficient
        planes of the ZFP-like compressor) fail that bound analytically;
        building and then discarding their multi-thousand-symbol Huffman
        tables was the dominant cost of the whole encode.
        """

        n = symbols.size
        vmin = int(symbols.min())
        span = int(symbols.max()) - vmin + 1
        if span > max(65536, 4 * n):
            return False  # histogram too wide to be worth the pre-check
        counts = np.bincount(symbols - vmin, minlength=span)
        counts = counts[counts > 0]
        p = counts / n
        entropy_bytes = float(-(p * np.log2(p)).sum()) * n / 8.0
        lower_bound = 2.0 + 2.0 * counts.size + entropy_bytes
        return LosslessBackend._packed_size(symbols) <= lower_bound

    @staticmethod
    def _packed_size(symbols: np.ndarray) -> int:
        """Exact byte size of ``b"P" + _encode_packed(symbols)`` without building it."""

        if symbols.size == 0:
            return 1 + len(encode_varint(0)) + len(encode_varint(0))
        width = max(1, int(symbols.max()).bit_length())
        return (
            1
            + len(encode_varint(symbols.size))
            + len(encode_varint(width))
            + (symbols.size * width + 7) // 8
        )

    def encode_symbols(self, symbols: np.ndarray, *, context=None) -> bytes:
        """Losslessly encode a non-negative integer symbol stream.

        ``context`` is an optional :class:`repro.encoding.context.EntropyContext`
        (the pooled symbol statistics of an already-reconstructed reference
        tile).  When given, a table-free context-coded candidate (tag
        ``C``) competes against the self-describing candidates and wins
        only when strictly smaller — so context can never make a stream
        larger, and ``context=None`` reproduces the exact legacy bytes.
        """

        symbols = np.asarray(symbols, dtype=np.int64).ravel()
        if symbols.size and symbols.min() < 0:
            raise ValueError("symbols must be non-negative")
        best = self._encode_symbols_plain(symbols)
        if context is not None and self.name != "raw" and symbols.size:
            candidate = self._encode_context_candidate(symbols, context)
            if candidate is not None and len(candidate) < len(best):
                return candidate
        return best

    def _encode_symbols_plain(self, symbols: np.ndarray) -> bytes:
        """The self-describing (context-free) encoding of a symbol stream."""

        if self.name == "raw":
            payload = symbols.astype("<i8").tobytes()
            return b"R" + encode_varint(symbols.size) + payload

        values, runs = rle_encode(symbols)
        if runs.size > self._RLE_RUN_FRACTION * symbols.size:
            # Runs do not pay, so only the direct-Huffman candidate remains;
            # skip even that when packing wins on the entropy lower bound
            # alone.  (The zstd backend always builds its candidate: the
            # ablation measures the full LZ77+Huffman pipeline.)
            if self.name == "huffman" and symbols.size and self._packed_beats_entropy_bound(
                symbols
            ):
                return b"P" + self._encode_packed(symbols)
            entropy_candidate = b"D" + self._encode_direct_body(symbols)
        else:
            entropy_candidate = b"H" + self._encode_huffman_body(symbols, values, runs)
        if self.name == "zstd":
            # The Z stream wraps the better of the two entropy bodies (its
            # own leading tag included), mirroring the real SZ/MGARD
            # Huffman-then-Zstd stage.
            entropy_candidate = b"Z" + zstd_like_compress(entropy_candidate)
        # The fixed-width candidate's size is known analytically; only pay
        # for building it when it actually beats the entropy-coded stream.
        if self._packed_size(symbols) < len(entropy_candidate):
            return b"P" + self._encode_packed(symbols)
        return entropy_candidate

    # -- context-coded (halo) streams ----------------------------------
    def _encode_context_candidate(self, symbols: np.ndarray, context) -> Optional[bytes]:
        """Tag-``C`` candidate: code against the reference-tile histogram.

        Layout: ``C | varint n | varint pool_width | varint n_escapes |
        packed escape values (pool_width bits each) | bit stream``.  The
        canonical code is derived from the context pool plus the escape
        pseudo-symbol on both sides, so no table is stored.
        """

        from repro.encoding.context import stream_width
        from repro.encoding.huffman import (
            canonical_code_from_counts,
            huffman_encode_with_code,
        )

        width = stream_width(symbols)
        pool = context.pool(width)
        if pool is None:
            return None
        esc_symbol = pool.escape_symbol
        code_symbols = np.append(pool.symbols, esc_symbol)
        code_counts = np.append(pool.counts, pool.escape_count)
        syms_c, lens_c, codes_c = canonical_code_from_counts(code_symbols, code_counts)

        in_alphabet = np.isin(symbols, pool.symbols)
        escapes = symbols[~in_alphabet]
        coded = np.where(in_alphabet, symbols, esc_symbol)
        bitstream = huffman_encode_with_code(coded, syms_c, lens_c, codes_c)

        body = bytearray(b"C")
        body.extend(encode_varint(symbols.size))
        body.extend(encode_varint(width))
        body.extend(encode_varint(int(escapes.size)))
        body.extend(self._pack_fixed_width(escapes, width))
        body.extend(bitstream)
        return bytes(body)

    def _decode_context_stream(self, body: bytes, context) -> np.ndarray:
        from repro.encoding.huffman import (
            canonical_code_from_counts,
            huffman_decode_with_code,
        )

        if context is None:
            raise ValueError(
                "context-coded (halo) stream but no entropy context supplied"
            )
        count, pos = decode_varint(body, 0)
        width, pos = decode_varint(body, pos)
        n_escapes, pos = decode_varint(body, pos)
        pool = context.pool(width)
        if pool is None:
            raise ValueError(
                f"entropy context has no pool for stream width {width}"
            )
        escape_bytes = (n_escapes * width + 7) // 8
        escapes = np.empty(0, dtype=np.int64)
        if n_escapes:
            reader = BitReader(body[pos : pos + escape_bytes])
            escapes = reader.read_bits_array(
                np.full(n_escapes, width, dtype=np.int64)
            ).astype(np.int64)
        pos += escape_bytes

        esc_symbol = pool.escape_symbol
        code_symbols = np.append(pool.symbols, esc_symbol)
        code_counts = np.append(pool.counts, pool.escape_count)
        syms_c, lens_c, _ = canonical_code_from_counts(code_symbols, code_counts)
        decoded = huffman_decode_with_code(body[pos:], count, syms_c, lens_c)
        escape_positions = np.flatnonzero(decoded == esc_symbol)
        if escape_positions.size != n_escapes:
            raise ValueError("context stream escape count mismatch")
        if n_escapes:
            decoded = decoded.copy()
            decoded[escape_positions] = escapes
        return decoded

    def decode_symbols(self, blob: bytes, *, context=None) -> np.ndarray:
        """Inverse of :meth:`encode_symbols`.

        ``context`` must be the same :class:`EntropyContext` the encoder
        used whenever the stream carries the ``C`` tag; self-describing
        streams ignore it.
        """

        if not blob:
            raise ValueError("empty lossless payload")
        tag, body = blob[:1], blob[1:]
        if tag == b"C":
            return self._decode_context_stream(body, context)
        if tag == b"R":
            count, pos = decode_varint(body, 0)
            return np.frombuffer(body[pos : pos + 8 * count], dtype="<i8").astype(np.int64)
        if tag == b"P":
            return self._decode_packed(body)
        if tag == b"D":
            count, pos = decode_varint(body, 0)
            symbols = huffman_decode(body[pos:])
            if symbols.size != count:
                raise ValueError("lossless payload symbol count mismatch")
            return symbols
        if tag == b"Z":
            # The decompressed body is a complete tagged entropy stream
            # (H or D, whichever the encoder picked).
            return self.decode_symbols(zstd_like_decompress(body))
        if tag != b"H":
            raise ValueError(f"unknown lossless backend tag {tag!r}")
        count, pos = decode_varint(body, 0)
        vlen, pos = decode_varint(body, pos)
        values = huffman_decode(body[pos : pos + vlen])
        pos += vlen
        rlen, pos = decode_varint(body, pos)
        runs = huffman_decode(body[pos : pos + rlen])
        symbols = rle_decode(values, runs)
        if symbols.size != count:
            raise ValueError("lossless payload symbol count mismatch")
        return symbols


class Compressor(ABC):
    """Abstract error-bounded lossy compressor."""

    #: short, registry-style compressor name ("sz", "zfp", "mgard").
    name: str = "abstract"

    def __init__(self, error_bound: float = 1e-3) -> None:
        if not np.isfinite(error_bound) or error_bound <= 0:
            raise ValueError(f"error_bound must be a positive finite float, got {error_bound!r}")
        self.error_bound = float(error_bound)

    @abstractmethod
    def compress(self, field: np.ndarray) -> CompressedField:
        """Compress a 2D field under the configured absolute error bound."""

    @abstractmethod
    def decompress(self, compressed: CompressedField) -> np.ndarray:
        """Reconstruct the field from a :class:`CompressedField`."""

    #: True when ``compress``/``decompress`` accept the ``halo`` keyword
    #: (a :class:`repro.compressors.halo.TileHalo`).
    supports_halo: bool = False

    def decompress_with_context(self, compressed: CompressedField, halo=None):
        """Decode and return ``(values, entropy_context)``.

        The context is the :class:`repro.encoding.context.EntropyContext`
        derived from the container's decoded symbol streams — identical to
        the one the encoder attached — so callers can chain halos through
        a decode pass.  Compressors without backend streams return
        ``None`` for the context.
        """

        return self.decompress(compressed), None

    # ------------------------------------------------------------------
    def compression_ratio(self, field: np.ndarray) -> float:
        """Convenience: compress and return only the compression ratio."""

        return self.compress(field).compression_ratio

    def check_error_bound(
        self, original: np.ndarray, reconstruction: np.ndarray, *, tolerance_factor: float = 1.0 + 1e-9
    ) -> float:
        """Verify the point-wise error bound; returns the max absolute error.

        Raises :class:`ErrorBoundExceededError` when violated (a tiny
        relative slack absorbs floating-point round-off in the check
        itself).
        """

        max_error = float(np.max(np.abs(np.asarray(original) - np.asarray(reconstruction))))
        # Negated <= so a NaN max error (a reconstruction that went
        # non-finite) fails the check instead of slipping past a ``>``.
        if not (max_error <= self.error_bound * tolerance_factor):
            raise ErrorBoundExceededError(
                f"{self.name}: max reconstruction error {max_error:.3e} exceeds "
                f"error bound {self.error_bound:.3e}"
            )
        return max_error

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(error_bound={self.error_bound!r})"
