"""Error-bounded lossy compressors.

From-scratch NumPy implementations of the three compressor families the
paper evaluates, mirroring the algorithmic structure described in its
Section II-A:

* :mod:`repro.compressors.sz` -- SZ-like prediction + quantization
  compressor: 16x16 blocks, Lorenzo and hyperplane-regression predictors,
  linear quantization against an absolute error bound, exact storage of
  unpredictable values, Huffman/Zstd-like lossless backend.
* :mod:`repro.compressors.zfp` -- ZFP-like transform compressor: 4x4
  blocks, block-floating-point fixed-point conversion, the ZFP
  near-orthogonal lifting transform, bit-plane truncation steered by the
  error tolerance, entropy coding of the surviving coefficients.
* :mod:`repro.compressors.mgard` -- MGARD-like multilevel compressor:
  dyadic multigrid hierarchy, per-level detail coefficients, per-level
  quantization with an error-budget split, lossless backend.

Shared machinery lives in :mod:`repro.compressors.base` (interfaces and the
compressed-container format), :mod:`repro.compressors.quantization`,
:mod:`repro.compressors.lorenzo`,
:mod:`repro.compressors.regression_predictor`,
:mod:`repro.compressors.transform` and :mod:`repro.compressors.multigrid`.
:mod:`repro.compressors.registry` exposes the string-keyed factory used by
the pressio-like API and the experiment pipeline.
"""

from repro.compressors.base import (
    CompressedField,
    Compressor,
    CompressorError,
    ErrorBoundExceededError,
    LosslessBackend,
)
from repro.compressors.sz import SZCompressor
from repro.compressors.zfp import ZFPCompressor
from repro.compressors.mgard import MGARDCompressor
from repro.compressors.registry import (
    available_compressors,
    make_compressor,
    register_compressor,
)

__all__ = [
    "Compressor",
    "CompressedField",
    "CompressorError",
    "ErrorBoundExceededError",
    "LosslessBackend",
    "SZCompressor",
    "ZFPCompressor",
    "MGARDCompressor",
    "available_compressors",
    "make_compressor",
    "register_compressor",
]
