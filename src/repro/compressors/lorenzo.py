"""Lorenzo predictor (first-order, 2D).

The Lorenzo predictor estimates a grid value from its already-processed
neighbours::

    pred(i, j) = f(i-1, j) + f(i, j-1) - f(i-1, j-1)

Two implementations are provided:

* **Block-local integer Lorenzo** (:func:`block_lorenzo_residuals` /
  :func:`block_lorenzo_reconstruct`) — thin aliases of the shared
  block-codec engine (:mod:`repro.compressors.blocks`), which operates on
  *pre-quantized* integer codes inside each block independently, treating
  out-of-block neighbours as zero.  Because each reconstructed value equals
  ``2*eb*code`` exactly, prediction from codes is identical to prediction
  from reconstructed values, the error bound holds point-wise, and both
  directions reduce to array shifts / double cumulative sums that vectorise
  across all blocks at once.  Block independence also matches the paper's
  observation that SZ's predictor "does not observe values outside of its
  block".
* **Feedback Lorenzo** (:func:`lorenzo_predict_feedback`) — the textbook SZ
  formulation where the prediction uses previously *reconstructed*
  floating-point values and the residual is quantized on the fly.  It is a
  scalar Python loop, kept as a reference implementation and used by the
  unit tests on small fields to validate the vectorised path.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.compressors.blocks import (
    DEFAULT_CODE_RADIUS,
    lorenzo_reconstruct,
    lorenzo_residuals,
)
from repro.utils.validation import ensure_2d, ensure_positive

__all__ = [
    "block_lorenzo_residuals",
    "block_lorenzo_reconstruct",
    "lorenzo_predict_feedback",
]

#: Vectorized block-local Lorenzo; implemented by the block-codec engine.
block_lorenzo_residuals = lorenzo_residuals
block_lorenzo_reconstruct = lorenzo_reconstruct


def lorenzo_predict_feedback(
    field: np.ndarray,
    error_bound: float,
    *,
    code_radius: int = DEFAULT_CODE_RADIUS,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference (scalar) SZ-style Lorenzo pass with reconstruction feedback.

    Walks the field in raster order; each value is predicted from the
    *reconstructed* left/top/top-left neighbours, the residual is quantized
    with bin width ``2*error_bound``, and values whose code magnitude
    exceeds ``code_radius`` are marked unpredictable and kept exact.

    Returns ``(codes, unpredictable_mask, reconstruction)``.  Used by the
    test-suite to validate that the vectorised block formulation obeys the
    same error bound and produces comparable code statistics; the SZ
    compressor itself uses the vectorised path.
    """

    field = ensure_2d(field, "field")
    ensure_positive(error_bound, "error_bound")
    values = np.asarray(field, dtype=np.float64)
    rows, cols = values.shape
    step = 2.0 * error_bound

    codes = np.zeros((rows, cols), dtype=np.int64)
    unpredictable = np.zeros((rows, cols), dtype=bool)
    recon = np.zeros((rows, cols), dtype=np.float64)

    for i in range(rows):
        for j in range(cols):
            top = recon[i - 1, j] if i > 0 else 0.0
            left = recon[i, j - 1] if j > 0 else 0.0
            diag = recon[i - 1, j - 1] if i > 0 and j > 0 else 0.0
            pred = top + left - diag
            code = np.rint((values[i, j] - pred) / step)
            candidate = pred + step * code
            if (
                abs(code) > code_radius
                or not np.isfinite(code)
                or abs(candidate - values[i, j]) > error_bound
            ):
                unpredictable[i, j] = True
                recon[i, j] = values[i, j]
            else:
                codes[i, j] = int(code)
                recon[i, j] = candidate
    return codes, unpredictable, recon
