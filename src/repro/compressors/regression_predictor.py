"""Hyperplane regression predictor (SZ's second predictor).

For every ``bs x bs`` block the predictor fits a plane

.. math::

    \\hat{f}(i, j) = \\beta_0 + \\beta_1 \\cdot i + \\beta_2 \\cdot j

to the block's values by least squares and predicts each point from the
fitted plane.  Because the design matrix (the block's local ``(i, j)``
coordinates) is the same for every block, the least-squares solve reduces
to one precomputed pseudo-inverse applied to all blocks with a single
``einsum`` — no per-block Python loops.

The decoder must form the *same* plane, so the coefficients are themselves
quantized (with a precision tied to the error bound, as in SZ) and stored
in the compressed stream; predictions are always computed from the
quantized coefficients on both sides.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import ensure_positive

__all__ = [
    "plane_design_matrix",
    "fit_block_planes",
    "quantize_plane_coefficients",
    "dequantize_plane_coefficients",
    "plane_predictions",
    "coefficient_precisions",
]


def plane_design_matrix(block_size: int) -> np.ndarray:
    """Design matrix ``[1, i, j]`` for every cell of a ``block_size`` block."""

    ensure_positive(block_size, "block_size")
    ii, jj = np.meshgrid(np.arange(block_size), np.arange(block_size), indexing="ij")
    return np.column_stack(
        [np.ones(block_size * block_size), ii.ravel().astype(np.float64), jj.ravel().astype(np.float64)]
    )


def fit_block_planes(blocks: np.ndarray) -> np.ndarray:
    """Least-squares plane coefficients for every block.

    ``blocks`` has shape ``(nbi, nbj, bs, bs)``; the result has shape
    ``(nbi, nbj, 3)`` holding ``(beta0, beta_i, beta_j)`` per block.
    """

    if blocks.ndim != 4:
        raise ValueError(f"expected 4D block array, got shape {blocks.shape}")
    nbi, nbj, bs, bs2 = blocks.shape
    if bs != bs2:
        raise ValueError("blocks must be square")
    design = plane_design_matrix(bs)
    pseudo_inverse = np.linalg.pinv(design)  # (3, bs*bs)
    flat = blocks.reshape(nbi, nbj, bs * bs).astype(np.float64)
    return np.einsum("kp,ijp->ijk", pseudo_inverse, flat)


def coefficient_precisions(error_bound: float, block_size: int) -> np.ndarray:
    """Quantization step for (intercept, slope_i, slope_j) coefficients.

    Following SZ's choice, the intercept is stored to within the error
    bound itself, while slope coefficients are stored to within
    ``error_bound / block_size`` so the accumulated prediction error across
    a block stays of the order of the error bound.
    """

    ensure_positive(error_bound, "error_bound")
    ensure_positive(block_size, "block_size")
    return np.array(
        [error_bound, error_bound / block_size, error_bound / block_size], dtype=np.float64
    )


def quantize_plane_coefficients(
    coefficients: np.ndarray, error_bound: float, block_size: int
) -> np.ndarray:
    """Quantize plane coefficients to integer codes (per-coefficient precision)."""

    precisions = coefficient_precisions(error_bound, block_size)
    coeffs = np.asarray(coefficients, dtype=np.float64)
    return np.rint(coeffs / precisions).astype(np.int64)


def dequantize_plane_coefficients(
    codes: np.ndarray, error_bound: float, block_size: int
) -> np.ndarray:
    """Inverse of :func:`quantize_plane_coefficients`."""

    precisions = coefficient_precisions(error_bound, block_size)
    return np.asarray(codes, dtype=np.float64) * precisions


def plane_predictions(coefficients: np.ndarray, block_size: int) -> np.ndarray:
    """Evaluate plane predictions for every block.

    ``coefficients`` has shape ``(nbi, nbj, 3)``; the result has shape
    ``(nbi, nbj, bs, bs)``.
    """

    coeffs = np.asarray(coefficients, dtype=np.float64)
    if coeffs.ndim != 3 or coeffs.shape[-1] != 3:
        raise ValueError(f"expected (nbi, nbj, 3) coefficients, got {coeffs.shape}")
    ii, jj = np.meshgrid(np.arange(block_size), np.arange(block_size), indexing="ij")
    return (
        coeffs[:, :, 0, None, None]
        + coeffs[:, :, 1, None, None] * ii[None, None, :, :]
        + coeffs[:, :, 2, None, None] * jj[None, None, :, :]
    )
