"""Hyperplane regression predictor (SZ's second predictor).

For every ``bs x bs`` block the predictor fits a plane

.. math::

    \\hat{f}(i, j) = \\beta_0 + \\beta_1 \\cdot i + \\beta_2 \\cdot j

to the block's values by least squares and predicts each point from the
fitted plane.  Because the design matrix (the block's local ``(i, j)``
coordinates) is the same for every block, the least-squares solve reduces
to one precomputed pseudo-inverse applied to all blocks with a single
``einsum`` — no per-block Python loops.

The decoder must form the *same* plane, so the coefficients are themselves
quantized (with a precision tied to the error bound, as in SZ) and stored
in the compressed stream; predictions are always computed from the
quantized coefficients on both sides.

The implementations live in the shared block-codec engine
(:mod:`repro.compressors.blocks`); this module re-exports them under their
historical names.
"""

from __future__ import annotations

from repro.compressors.blocks import (
    coefficient_precisions,
    dequantize_plane_coefficients,
    fit_block_planes,
    plane_design_matrix,
    plane_predictions,
    quantize_plane_coefficients,
)

__all__ = [
    "plane_design_matrix",
    "fit_block_planes",
    "quantize_plane_coefficients",
    "dequantize_plane_coefficients",
    "plane_predictions",
    "coefficient_precisions",
]
