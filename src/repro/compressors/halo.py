"""The tile halo carried between neighbouring tiles/chunks.

A :class:`TileHalo` bundles everything a tile codec may borrow from its
*already reconstructed* low-index neighbours:

* ``planes`` — per axis, the one reconstructed plane adjacent to the
  tile's low face (``planes[a]`` has the tile's shape with axis ``a``
  dropped, i.e. the neighbour's high face).  The SZ-like block codec feeds
  these to its Lorenzo predictor so prediction crosses the tile seam
  instead of restarting (:mod:`repro.compressors.blocks`).
* ``context`` — the neighbour's :class:`repro.encoding.context.EntropyContext`
  (pooled symbol statistics of one designated *reference* neighbour), used
  by every container to entropy code its streams without re-paying the
  per-tile table bootstrap.

Both parts come from reconstructed data only, so the encoder and the
decoder can derive bit-identical halos — the decoder reconstructs the
neighbours first (wavefront order in the volume pipeline, anchor-chunk
parity in the array store) and passes the same object to ``decompress``.
The error bound is unaffected: halos steer *prediction and entropy
coding*, while residual quantization stays against the original values.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.encoding.context import EntropyContext

__all__ = ["TileHalo", "reconstruction_faces"]


def reconstruction_faces(values: Optional[np.ndarray]) -> dict:
    """High-index face planes of a reconstruction, keyed by axis.

    These are exactly the planes the tile's high neighbours predict from
    — the only part of a reconstruction halo producers need to retain
    (or ship across process boundaries).  Returns ``{}`` when no
    reconstruction is available.
    """

    if values is None:
        return {}
    return {
        axis: np.ascontiguousarray(np.take(values, -1, axis=axis))
        for axis in range(values.ndim)
    }


@dataclass(frozen=True)
class TileHalo:
    """Low-face neighbour planes and the reference entropy context."""

    planes: Tuple[Optional[np.ndarray], ...] = ()
    context: Optional[EntropyContext] = None

    @classmethod
    def build(
        cls,
        planes: Sequence[Optional[np.ndarray]],
        context: Optional[EntropyContext] = None,
    ) -> Optional["TileHalo"]:
        """Normalise inputs; returns ``None`` when the halo carries nothing."""

        normalised = tuple(
            None if p is None else np.ascontiguousarray(p, dtype=np.float64)
            for p in planes
        )
        if all(p is None for p in normalised) and (
            context is None or not context
        ):
            return None
        return cls(planes=normalised, context=context)

    @property
    def axes_mask(self) -> int:
        """Bit ``a`` set when a plane for axis ``a`` is present."""

        mask = 0
        for axis, plane in enumerate(self.planes):
            if plane is not None:
                mask |= 1 << axis
        return mask

    @property
    def has_planes(self) -> bool:
        return any(p is not None for p in self.planes)

    def plane(self, axis: int) -> Optional[np.ndarray]:
        if axis >= len(self.planes):
            return None
        return self.planes[axis]

    def digest(self) -> str:
        """Content hash — memo/dedup keys must distinguish halos."""

        h = hashlib.sha1()
        for axis, plane in enumerate(self.planes):
            h.update(axis.to_bytes(2, "little"))
            if plane is None:
                h.update(b"-")
            else:
                h.update(str(plane.shape).encode())
                h.update(np.ascontiguousarray(plane).tobytes())
        if self.context is not None and self.context:
            h.update(self.context.digest().encode())
        return h.hexdigest()
