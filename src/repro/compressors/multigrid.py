"""Dyadic multigrid decomposition used by the MGARD-like compressor.

MGARD decomposes a field into multilevel coefficients defined on a
hierarchy of nested grids.  This module implements a dimension-general
(2D + 3D) version of that machinery:

* the hierarchy is built by **injection** (taking every other grid point in
  every dimension), level 0 being the original grid;
* the **prolongation** operator maps a coarse-level array back to the next
  finer level by separable linear interpolation;
* the **detail coefficients** of a level are the differences between the
  fine-level values and the prolongation of the coarse level.  Because the
  coarse grid is a subset of the fine grid (injection), details vanish at
  coarse grid points and only the complementary positions are stored.

Linear interpolation satisfies a maximum principle (the interpolated value
is a convex combination of coarse values), so a perturbation of the coarse
level by at most ``e`` perturbs the prolongation by at most ``e``; the
MGARD-like compressor exploits this to split the error budget across
levels additively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.utils.validation import ensure_ndim, ensure_positive

__all__ = [
    "max_levels",
    "coarsen_shape",
    "restrict",
    "prolong",
    "detail_mask",
    "MultigridDecomposition",
    "decompose",
    "reconstruct",
]

#: Dimensionalities the decomposition supports.
SUPPORTED_NDIMS = (2, 3)


def max_levels(shape: Tuple[int, ...], min_size: int = 4) -> int:
    """Number of coarsening steps possible before a dimension drops below ``min_size``."""

    ensure_positive(min_size, "min_size")
    levels = 0
    dims = tuple(shape)
    while all((d + 1) // 2 >= min_size for d in dims):
        dims = tuple((d + 1) // 2 for d in dims)
        levels += 1
    return levels


def coarsen_shape(shape: Tuple[int, ...]) -> Tuple[int, ...]:
    """Shape of the grid obtained by keeping every other point (indices 0, 2, ...)."""

    return tuple((d + 1) // 2 for d in shape)


def _even_slices(ndim: int) -> Tuple[slice, ...]:
    return (slice(None, None, 2),) * ndim


def restrict(field: np.ndarray) -> np.ndarray:
    """Injection restriction: keep grid points with even indices."""

    field = ensure_ndim(field, SUPPORTED_NDIMS, "field")
    return np.ascontiguousarray(field[_even_slices(field.ndim)])


def prolong(coarse: np.ndarray, fine_shape: Tuple[int, ...]) -> np.ndarray:
    """Separable linear interpolation of a coarse grid onto ``fine_shape``.

    The coarse grid is assumed to sit at even indices of the fine grid
    (the injection convention of :func:`restrict`).
    """

    coarse = ensure_ndim(coarse, SUPPORTED_NDIMS, "coarse")
    if len(fine_shape) != coarse.ndim:
        raise ValueError(
            f"fine_shape {fine_shape} does not match a {coarse.ndim}D coarse grid"
        )
    if coarse.ndim == 2:
        # Matrix-product fast path (also pins the historical 2D float
        # behaviour bit for bit).
        rows, cols = fine_shape
        row_weights = _interp_matrix(
            np.arange(rows, dtype=np.float64),
            np.arange(coarse.shape[0], dtype=np.float64) * 2.0,
        )
        col_weights = _interp_matrix(
            np.arange(cols, dtype=np.float64),
            np.arange(coarse.shape[1], dtype=np.float64) * 2.0,
        )
        return row_weights @ coarse @ col_weights.T
    current = np.asarray(coarse, dtype=np.float64)
    for axis, length in enumerate(fine_shape):
        weights = _interp_matrix(
            np.arange(length, dtype=np.float64),
            np.arange(current.shape[axis], dtype=np.float64) * 2.0,
        )
        current = np.moveaxis(
            np.tensordot(weights, current, axes=(1, axis)), 0, axis
        )
    return current


def _interp_matrix(fine_positions: np.ndarray, coarse_positions: np.ndarray) -> np.ndarray:
    """Sparse-in-spirit linear interpolation matrix (dense ndarray).

    Row ``i`` holds the convex weights that combine coarse samples into the
    fine sample at ``fine_positions[i]``; each row has at most two non-zero
    entries and sums to 1, which is what gives prolongation its
    non-amplifying (max-principle) property.
    """

    n_fine = fine_positions.size
    n_coarse = coarse_positions.size
    weights = np.zeros((n_fine, n_coarse), dtype=np.float64)
    if n_coarse == 1:
        weights[:, 0] = 1.0
        return weights
    clipped = np.clip(fine_positions, coarse_positions[0], coarse_positions[-1])
    right = np.searchsorted(coarse_positions, clipped, side="left")
    right = np.clip(right, 1, n_coarse - 1)
    left = right - 1
    span = coarse_positions[right] - coarse_positions[left]
    frac = (clipped - coarse_positions[left]) / span
    rows = np.arange(n_fine)
    weights[rows, left] = 1.0 - frac
    weights[rows, right] = frac
    return weights


def detail_mask(shape: Tuple[int, ...]) -> np.ndarray:
    """Boolean mask of fine-grid positions *not* on the coarse grid."""

    mask = np.ones(tuple(shape), dtype=bool)
    mask[_even_slices(len(shape))] = False
    return mask


@dataclass
class MultigridDecomposition:
    """Result of :func:`decompose`.

    Attributes
    ----------
    coarse:
        The coarsest-level array.
    details:
        List of detail-coefficient vectors, finest level first; entry ``l``
        holds the values at fine positions missing from level ``l+1``'s
        grid (flattened in row-major order of the masked positions).
    shapes:
        Grid shape per level, finest first (``shapes[0]`` is the original).
    """

    coarse: np.ndarray
    details: List[np.ndarray]
    shapes: List[Tuple[int, ...]]

    @property
    def n_levels(self) -> int:
        return len(self.details)


def decompose(field: np.ndarray, levels: int) -> MultigridDecomposition:
    """Multilevel decomposition of ``field`` with ``levels`` coarsening steps."""

    field = ensure_ndim(field, SUPPORTED_NDIMS, "field").astype(np.float64)
    if levels < 0:
        raise ValueError("levels must be >= 0")
    available = max_levels(field.shape)
    levels = min(levels, available)
    shapes: List[Tuple[int, ...]] = [field.shape]
    details: List[np.ndarray] = []
    current = field
    for _ in range(levels):
        coarse = restrict(current)
        predicted = prolong(coarse, current.shape)
        residual = current - predicted
        mask = detail_mask(current.shape)
        details.append(residual[mask])
        shapes.append(coarse.shape)
        current = coarse
    return MultigridDecomposition(coarse=current, details=details, shapes=shapes)


def reconstruct(decomposition: MultigridDecomposition) -> np.ndarray:
    """Invert :func:`decompose` exactly (up to floating point round-off)."""

    current = np.asarray(decomposition.coarse, dtype=np.float64)
    for level in range(len(decomposition.details) - 1, -1, -1):
        fine_shape = decomposition.shapes[level]
        predicted = prolong(current, fine_shape)
        mask = detail_mask(fine_shape)
        fine = predicted.copy()
        fine[mask] += decomposition.details[level]
        # Injection points are exact copies of the coarse values.
        fine[_even_slices(len(fine_shape))] = current
        current = fine
    return current
