"""String-keyed compressor registry.

The experiment pipeline, the pressio-like API and the benchmarks refer to
compressors by the names the paper uses ("sz", "zfp", "mgard").  The
registry maps those names to factories so user code can plug in additional
compressors without touching the pipeline.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.compressors.base import Compressor
from repro.compressors.mgard import MGARDCompressor
from repro.compressors.sz import SZCompressor
from repro.compressors.zfp import ZFPCompressor

__all__ = ["register_compressor", "make_compressor", "available_compressors"]

CompressorFactory = Callable[..., Compressor]

_REGISTRY: Dict[str, CompressorFactory] = {
    "sz": SZCompressor,
    "zfp": ZFPCompressor,
    "mgard": MGARDCompressor,
}


def register_compressor(name: str, factory: CompressorFactory, *, overwrite: bool = False) -> None:
    """Register a compressor factory under ``name``.

    The factory must accept ``error_bound`` as its first keyword argument
    and return a :class:`repro.compressors.base.Compressor`.
    """

    if not name:
        raise ValueError("compressor name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise KeyError(f"compressor {name!r} is already registered")
    _REGISTRY[name] = factory


def available_compressors() -> List[str]:
    """Sorted list of registered compressor names."""

    return sorted(_REGISTRY)


def make_compressor(name: str, error_bound: float, **options) -> Compressor:
    """Instantiate a registered compressor with the given error bound."""

    try:
        factory = _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown compressor {name!r}; available: {available_compressors()}"
        ) from exc
    return factory(error_bound=error_bound, **options)
