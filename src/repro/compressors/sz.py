"""SZ-like error-bounded lossy compressor.

Follows the algorithmic pipeline of SZ 2.x as described in the paper's
Section II-A:

1. the field is scanned block by block (16x16 for 2D data, 8x8x8 for 3D
   volumes);
2. every block is predicted with *both* the Lorenzo predictor and the
   hyperplane regression predictor, and the cheaper of the two (in
   estimated coding cost) is selected per block;
3. prediction residuals are linearly quantized against the absolute error
   bound; residual codes outside the quantization radius are stored exactly
   in a side channel ("unpredictable" values);
4. the quantization-code stream is entropy coded (run-length + canonical
   Huffman by default, optionally the LZ77+Huffman Zstd-like backend).

Steps 1-3 are the shared, fully vectorized dimension-general block-codec
engine (:class:`repro.compressors.blocks.BlockCodec`); this module owns
only the container formats: serializing the engine's arrays (modes,
symbols, regression coefficients, exact outliers) into a self-describing
byte blob and back.  The coefficient and outlier side channels use the
array varint codecs, so neither direction loops over elements in Python.

Two container formats exist: the legacy 2D layout (``SZR1``, unchanged
bytes for 2D fields) and the dimension-general volume layout (``SZV1``)
used for 3D inputs, which stores the dimensionality explicitly.  Both
magics share a leading flag varint: ``0`` plain, ``1`` raw fallback, and
``2`` *halo-coded* — the tile was compressed against a
:class:`repro.compressors.halo.TileHalo` (cross-seam Lorenzo prediction
from the neighbour's reconstructed low-face planes, and/or context-coded
backend streams), and ``decompress`` must receive the same halo.  Halo-off
payloads are bit-identical to the pre-halo format.

See the engine's docstring for why predicting in pre-quantized integer-code
space is equivalent to the reference feedback formulation; the scalar
reference is kept in :func:`repro.compressors.lorenzo.lorenzo_predict_feedback`
and the test suite checks the two agree on the error-bound invariant and
produce similar code statistics.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

from repro.compressors.base import CompressedField, Compressor, CompressorError, LosslessBackend
from repro.compressors.blocks import (
    DEFAULT_CODE_RADIUS,
    MODE_REGRESSION,
    BlockCodec,
)
from repro.encoding.varint import (
    decode_signed_varint_array,
    decode_varint,
    encode_signed_varint_array,
    encode_varint,
)
from repro.utils.validation import ensure_float_array, ensure_ndim

__all__ = ["SZCompressor"]

_MAGIC = b"SZR1"
_MAGIC_VOLUME = b"SZV1"
#: Container flag values (leading varint after the magic).
_FLAG_RAW = 1
_FLAG_HALO = 2


class SZCompressor(Compressor):
    """SZ-like prediction-based error-bounded compressor (2D + 3D).

    Parameters
    ----------
    error_bound:
        Absolute error bound.
    block_size:
        Edge length of the prediction blocks for 2D fields (16 in SZ).
    block_size_3d:
        Edge length of the cubic prediction blocks for 3D volumes (SZ uses
        small cubes — 6^3 in the reference; 8^3 here keeps the block tensor
        power-of-two friendly).
    predictors:
        Subset of ``{"lorenzo", "regression"}``; the default enables both
        with per-block selection, matching SZ.  Restricting to a single
        predictor is used by the predictor ablation benchmark.
    backend:
        Lossless backend name (``"huffman"``, ``"zstd"`` or ``"raw"``).
    code_radius:
        Maximum |quantization code| before a value is routed to the exact
        side channel (SZ's default corresponds to 2^16 intervals).
    """

    name = "sz"
    supports_halo = True

    def __init__(
        self,
        error_bound: float = 1e-3,
        *,
        block_size: int = 16,
        block_size_3d: int = 8,
        predictors: Tuple[str, ...] = ("lorenzo", "regression"),
        backend: str = "huffman",
        code_radius: int = DEFAULT_CODE_RADIUS,
    ) -> None:
        super().__init__(error_bound)
        self._codec = BlockCodec(
            error_bound,
            block_size=block_size,
            predictors=predictors,
            code_radius=code_radius,
        )
        self._codec_3d = BlockCodec(
            error_bound,
            block_size=block_size_3d,
            predictors=predictors,
            code_radius=code_radius,
        )
        self.backend = LosslessBackend(backend)

    @property
    def block_size(self) -> int:
        return self._codec.block_size

    @property
    def block_size_3d(self) -> int:
        return self._codec_3d.block_size

    @property
    def predictors(self) -> Tuple[str, ...]:
        return self._codec.predictors

    @property
    def code_radius(self) -> int:
        return self._codec.code_radius

    def _codec_for(self, ndim: int) -> BlockCodec:
        return self._codec if ndim == 2 else self._codec_3d

    # ------------------------------------------------------------------
    # compression
    # ------------------------------------------------------------------
    def compress(
        self,
        field: np.ndarray,
        *,
        halo=None,
        collect_context: bool = False,
    ) -> CompressedField:
        """Compress a field, optionally against a tile halo.

        With ``halo`` (a :class:`~repro.compressors.halo.TileHalo`), the
        block codec's Lorenzo predictor differences across the tile's low
        faces using the neighbour planes, and the symbol stream may be
        context coded against ``halo.context`` — the payload then carries
        flag 2 and can only be decoded with the same halo.
        ``collect_context`` attaches this tile's own
        :class:`~repro.encoding.context.EntropyContext` to the result for
        downstream neighbours.
        """

        original = ensure_ndim(field, (2, 3), "field")
        original_dtype = np.asarray(field).dtype
        values = ensure_float_array(original, "field")
        codec = self._codec_for(values.ndim)

        halo_planes = None
        halo_axes_mask = 0
        halo_context = None
        if halo is not None:
            halo_planes = [halo.plane(axis) for axis in range(values.ndim)]
            if all(p is None for p in halo_planes):
                halo_planes = None
            else:
                halo_axes_mask = sum(
                    1 << axis
                    for axis, plane in enumerate(halo_planes)
                    if plane is not None
                )
            halo_context = halo.context

        encoding = codec.encode(values, halo_planes=halo_planes)
        if encoding is None:
            # Error bound too small relative to the data magnitude for the
            # integer grid: fall back to verbatim storage (CR ~= 1).
            return self._compress_raw(values, original_dtype)
        max_error = float(np.abs(values - encoding.reconstruction).max(initial=0.0))
        if max_error > self.error_bound:
            # The grid reconstruction is mathematically within eb, but at
            # extreme magnitude/bound ratios floating-point round-off on
            # q*step can exceed it by a few ulps; raw storage keeps the
            # bound a hard guarantee.
            return self._compress_raw(values, original_dtype)

        halo_coded = halo_planes is not None or halo_context is not None
        flag = _FLAG_HALO if halo_coded else 0
        payload = bytearray()
        if values.ndim == 2:
            payload.extend(_MAGIC)
            payload.extend(encode_varint(flag))  # 0 plain / 1 raw / 2 halo
        else:
            payload.extend(_MAGIC_VOLUME)
            payload.extend(encode_varint(flag))
            payload.extend(encode_varint(values.ndim))
        if halo_coded:
            payload.extend(encode_varint(halo_axes_mask))
        for length in encoding.original_shape:
            payload.extend(encode_varint(length))
        payload.extend(encode_varint(codec.block_size))
        payload.extend(struct.pack("<d", self.error_bound))
        payload.extend(encode_varint(self.code_radius))
        for count in encoding.n_blocks:
            payload.extend(encode_varint(count))

        mode_bits = np.packbits(encoding.modes.astype(np.uint8).ravel())
        payload.extend(encode_varint(len(mode_bits)))
        payload.extend(mode_bits.tobytes())

        coeff_blob = b""
        if encoding.coeff_codes is not None:
            coeff_blob = encode_signed_varint_array(encoding.coeff_codes.ravel())
        payload.extend(encode_varint(len(coeff_blob)))
        payload.extend(coeff_blob)

        symbol_blob = self.backend.encode_symbols(
            encoding.symbols.ravel(), context=halo_context
        )
        payload.extend(encode_varint(len(symbol_blob)))
        payload.extend(symbol_blob)

        outlier_blob = encode_signed_varint_array(encoding.outliers)
        payload.extend(encode_varint(int(encoding.outliers.size)))
        payload.extend(encode_varint(len(outlier_blob)))
        payload.extend(outlier_blob)

        compressed = CompressedField(
            data=bytes(payload),
            original_shape=tuple(encoding.original_shape),
            original_dtype=original_dtype,
            compressor=self.name,
            error_bound=self.error_bound,
            reconstruction=encoding.reconstruction,
            extras={
                "unpredictable_fraction": encoding.unpredictable_fraction,
                "regression_block_fraction": encoding.regression_fraction,
                "n_blocks": float(int(np.prod(encoding.n_blocks))),
                "halo_coded": float(halo_coded),
            },
        )
        if collect_context:
            from repro.encoding.context import EntropyContext

            compressed.entropy_context = EntropyContext.from_streams(
                [encoding.symbols.ravel()]
            )
        self.check_error_bound(values, encoding.reconstruction)
        return compressed

    def _compress_raw(self, values: np.ndarray, original_dtype: np.dtype) -> CompressedField:
        payload = bytearray()
        if values.ndim == 2:
            payload.extend(_MAGIC)
            payload.extend(encode_varint(1))  # raw flag
        else:
            payload.extend(_MAGIC_VOLUME)
            payload.extend(encode_varint(1))
            payload.extend(encode_varint(values.ndim))
        for length in values.shape:
            payload.extend(encode_varint(length))
        payload.extend(struct.pack("<d", self.error_bound))
        payload.extend(values.astype("<f8").tobytes())
        return CompressedField(
            data=bytes(payload),
            original_shape=values.shape,
            original_dtype=original_dtype,
            compressor=self.name,
            error_bound=self.error_bound,
            reconstruction=values.copy(),
            extras={"raw_fallback": 1.0},
        )

    # ------------------------------------------------------------------
    # decompression
    # ------------------------------------------------------------------
    def decompress(self, compressed: CompressedField, *, halo=None) -> np.ndarray:
        return self._decode(compressed, halo, want_context=False)[0]

    def decompress_with_context(self, compressed: CompressedField, halo=None):
        return self._decode(compressed, halo, want_context=True)

    def _decode(self, compressed: CompressedField, halo, want_context: bool = False):
        blob = compressed.data
        magic = blob[:4]
        if magic not in (_MAGIC, _MAGIC_VOLUME):
            raise CompressorError("not an SZ-like container")
        pos = 4
        flag, pos = decode_varint(blob, pos)
        if magic == _MAGIC:
            ndim = 2
        else:
            ndim, pos = decode_varint(blob, pos)
            if ndim != 3:
                raise CompressorError(f"sz: unsupported volume dimensionality {ndim}")
        halo_planes = None
        halo_context = None
        if flag == _FLAG_HALO:
            axes_mask, pos = decode_varint(blob, pos)
            if halo is None:
                raise CompressorError(
                    "sz: halo-coded container requires the tile halo to decode"
                )
            halo_planes = []
            for axis in range(ndim):
                if axes_mask & (1 << axis):
                    plane = halo.plane(axis)
                    if plane is None:
                        raise CompressorError(
                            f"sz: halo-coded container needs the axis-{axis} "
                            "neighbour plane"
                        )
                    halo_planes.append(plane)
                else:
                    halo_planes.append(None)
            halo_context = halo.context
        elif flag not in (0, _FLAG_RAW):
            raise CompressorError(f"sz: unknown container flag {flag}")
        shape = []
        for _ in range(ndim):
            length, pos = decode_varint(blob, pos)
            shape.append(length)
        original_shape = tuple(shape)
        if flag == _FLAG_RAW:
            (error_bound,) = struct.unpack_from("<d", blob, pos)
            pos += 8
            count = int(np.prod(original_shape))
            values = np.frombuffer(blob, dtype="<f8", count=count, offset=pos)
            return values.reshape(original_shape).astype(np.float64), None

        block_size, pos = decode_varint(blob, pos)
        (error_bound,) = struct.unpack_from("<d", blob, pos)
        pos += 8
        code_radius, pos = decode_varint(blob, pos)
        n_blocks = []
        for _ in range(ndim):
            count, pos = decode_varint(blob, pos)
            n_blocks.append(count)
        total_blocks = int(np.prod(n_blocks))

        mode_bytes_len, pos = decode_varint(blob, pos)
        mode_bits = np.frombuffer(blob[pos : pos + mode_bytes_len], dtype=np.uint8)
        pos += mode_bytes_len
        modes = (
            np.unpackbits(mode_bits)[:total_blocks].reshape(n_blocks).astype(np.int64)
        )

        coeff_len, pos = decode_varint(blob, pos)
        coeff_end = pos + coeff_len
        n_regression = int((modes == MODE_REGRESSION).sum())
        n_coeffs = 1 + ndim
        coeff_codes = None
        if n_regression:
            flat_coeffs, pos = decode_signed_varint_array(
                blob, n_regression * n_coeffs, pos
            )
            coeff_codes = flat_coeffs.reshape(n_regression, n_coeffs)
        if pos != coeff_end:
            raise CompressorError("regression coefficient stream length mismatch")

        symbol_len, pos = decode_varint(blob, pos)
        symbols = self.backend.decode_symbols(
            blob[pos : pos + symbol_len], context=halo_context
        )
        pos += symbol_len

        n_outliers, pos = decode_varint(blob, pos)
        outlier_len, pos = decode_varint(blob, pos)
        outliers = np.empty(0, dtype=np.int64)
        if n_outliers:
            outliers, pos = decode_signed_varint_array(blob, n_outliers, pos)

        codec = BlockCodec(
            error_bound, block_size=block_size, code_radius=code_radius
        )
        values = codec.decode(
            modes,
            symbols.reshape(total_blocks, block_size**ndim),
            outliers,
            coeff_codes,
            original_shape,
            halo_planes=halo_planes,
        )
        context = None
        if want_context:
            from repro.encoding.context import EntropyContext

            context = EntropyContext.from_streams([symbols.ravel()])
        return values, context
