"""SZ-like error-bounded lossy compressor.

Follows the algorithmic pipeline of SZ 2.x as described in the paper's
Section II-A:

1. the field is scanned block by block (16x16 for 2D data);
2. every block is predicted with *both* the Lorenzo predictor and the
   hyperplane regression predictor, and the cheaper of the two (in
   estimated coding cost) is selected per block;
3. prediction residuals are linearly quantized against the absolute error
   bound; residual codes outside the quantization radius are stored exactly
   in a side channel ("unpredictable" values);
4. the quantization-code stream is entropy coded (run-length + canonical
   Huffman by default, optionally the LZ77+Huffman Zstd-like backend).

Vectorisation note
------------------
The reference SZ predicts from *reconstructed* neighbour values, which
serialises the scan.  This implementation pre-quantizes the field onto the
``2*error_bound`` grid (so every reconstructed value equals
``2*eb*q`` exactly) and predicts in integer-code space.  Prediction from
codes is then identical to prediction from reconstructed values, the
point-wise error bound holds by construction, and both predictors reduce to
pure NumPy array operations over all blocks at once.  The scalar
reference formulation is kept in
:func:`repro.compressors.lorenzo.lorenzo_predict_feedback` and the test
suite checks the two agree on the error-bound invariant and produce
similar code statistics.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

from repro.compressors.base import CompressedField, Compressor, CompressorError, LosslessBackend
from repro.compressors.lorenzo import block_lorenzo_reconstruct, block_lorenzo_residuals
from repro.compressors.quantization import DEFAULT_CODE_RADIUS
from repro.compressors.regression_predictor import (
    dequantize_plane_coefficients,
    fit_block_planes,
    plane_predictions,
    quantize_plane_coefficients,
)
from repro.encoding.varint import (
    decode_signed_varint,
    decode_varint,
    encode_signed_varint,
    encode_varint,
)
from repro.utils.blocking import block_view, pad_to_multiple, reassemble_blocks
from repro.utils.validation import ensure_2d, ensure_float_array

__all__ = ["SZCompressor"]

_MAGIC = b"SZR1"
_MODE_LORENZO = 0
_MODE_REGRESSION = 1
# Safety margin for the pre-quantization integer grid (int64).
_MAX_SAFE_CODE = float(2**62)


class SZCompressor(Compressor):
    """SZ-like prediction-based error-bounded compressor.

    Parameters
    ----------
    error_bound:
        Absolute error bound.
    block_size:
        Edge length of the prediction blocks (16 in SZ for 2D data).
    predictors:
        Subset of ``{"lorenzo", "regression"}``; the default enables both
        with per-block selection, matching SZ.  Restricting to a single
        predictor is used by the predictor ablation benchmark.
    backend:
        Lossless backend name (``"huffman"``, ``"zstd"`` or ``"raw"``).
    code_radius:
        Maximum |quantization code| before a value is routed to the exact
        side channel (SZ's default corresponds to 2^16 intervals).
    """

    name = "sz"

    def __init__(
        self,
        error_bound: float = 1e-3,
        *,
        block_size: int = 16,
        predictors: Tuple[str, ...] = ("lorenzo", "regression"),
        backend: str = "huffman",
        code_radius: int = DEFAULT_CODE_RADIUS,
    ) -> None:
        super().__init__(error_bound)
        if block_size < 2:
            raise ValueError("block_size must be >= 2")
        if not predictors:
            raise ValueError("at least one predictor must be enabled")
        for predictor in predictors:
            if predictor not in ("lorenzo", "regression"):
                raise ValueError(f"unknown predictor {predictor!r}")
        self.block_size = int(block_size)
        self.predictors = tuple(predictors)
        self.backend = LosslessBackend(backend)
        if code_radius < 1:
            raise ValueError("code_radius must be >= 1")
        self.code_radius = int(code_radius)

    # ------------------------------------------------------------------
    # compression
    # ------------------------------------------------------------------
    def compress(self, field: np.ndarray) -> CompressedField:
        original = ensure_2d(field, "field")
        original_dtype = np.asarray(field).dtype
        values = ensure_float_array(original, "field")
        step = 2.0 * self.error_bound

        padded, original_shape = pad_to_multiple(values, self.block_size)
        scaled = padded / step
        if not np.all(np.isfinite(scaled)) or float(np.abs(scaled).max(initial=0.0)) > _MAX_SAFE_CODE:
            # Error bound too small relative to the data magnitude for the
            # integer grid: fall back to verbatim storage (CR ~= 1).
            return self._compress_raw(values, original_dtype)

        q = np.rint(scaled).astype(np.int64)
        code_blocks = block_view(q, self.block_size)
        value_blocks = block_view(padded, self.block_size)
        nbi, nbj, bs, _ = code_blocks.shape

        candidates = {}
        if "lorenzo" in self.predictors:
            candidates["lorenzo"] = block_lorenzo_residuals(code_blocks)
        reg_coeff_codes = None
        if "regression" in self.predictors:
            coefficients = fit_block_planes(value_blocks)
            reg_coeff_codes = quantize_plane_coefficients(
                coefficients, self.error_bound, self.block_size
            )
            quantized_coeffs = dequantize_plane_coefficients(
                reg_coeff_codes, self.error_bound, self.block_size
            )
            predictions = plane_predictions(quantized_coeffs, self.block_size)
            predicted_codes = np.rint(predictions / step).astype(np.int64)
            candidates["regression"] = code_blocks - predicted_codes

        modes, residual_blocks = self._select_modes(candidates)

        # Route residual codes beyond the quantization radius to the exact
        # (integer) side channel, identified by the reserved symbol 0.
        flat_codes = residual_blocks.reshape(nbi * nbj, bs * bs)
        outlier_mask = np.abs(flat_codes) > self.code_radius
        outliers = flat_codes[outlier_mask]
        symbols = np.where(
            outlier_mask, 0, flat_codes + self.code_radius + 1
        ).astype(np.int64)

        payload = bytearray()
        payload.extend(_MAGIC)
        payload.extend(encode_varint(0))  # container version / raw flag = 0
        payload.extend(encode_varint(original_shape[0]))
        payload.extend(encode_varint(original_shape[1]))
        payload.extend(encode_varint(self.block_size))
        payload.extend(struct.pack("<d", self.error_bound))
        payload.extend(encode_varint(self.code_radius))
        payload.extend(encode_varint(nbi))
        payload.extend(encode_varint(nbj))

        mode_bits = np.packbits(modes.astype(np.uint8).ravel())
        payload.extend(encode_varint(len(mode_bits)))
        payload.extend(mode_bits.tobytes())

        coeff_blob = bytearray()
        if reg_coeff_codes is not None:
            selected = reg_coeff_codes[modes == _MODE_REGRESSION]
            for code in selected.ravel():
                coeff_blob.extend(encode_signed_varint(int(code)))
        payload.extend(encode_varint(len(coeff_blob)))
        payload.extend(coeff_blob)

        symbol_blob = self.backend.encode_symbols(symbols.ravel())
        payload.extend(encode_varint(len(symbol_blob)))
        payload.extend(symbol_blob)

        outlier_blob = bytearray()
        for code in outliers:
            outlier_blob.extend(encode_signed_varint(int(code)))
        payload.extend(encode_varint(int(outliers.size)))
        payload.extend(encode_varint(len(outlier_blob)))
        payload.extend(outlier_blob)

        reconstruction = (q.astype(np.float64) * step)[: original_shape[0], : original_shape[1]]
        compressed = CompressedField(
            data=bytes(payload),
            original_shape=tuple(original_shape),
            original_dtype=original_dtype,
            compressor=self.name,
            error_bound=self.error_bound,
            reconstruction=reconstruction,
            extras={
                "unpredictable_fraction": float(outlier_mask.mean()),
                "regression_block_fraction": float((modes == _MODE_REGRESSION).mean()),
                "n_blocks": float(nbi * nbj),
            },
        )
        self.check_error_bound(values, reconstruction)
        return compressed

    def _select_modes(self, candidates) -> Tuple[np.ndarray, np.ndarray]:
        """Pick the cheaper predictor per block.

        The coding cost proxy is the total number of significant bits of the
        residual codes (a cheap stand-in for the Huffman-coded size), with a
        fixed overhead added for the regression coefficients that must be
        stored per regression block.
        """

        names = list(candidates)
        if len(names) == 1:
            residuals = candidates[names[0]]
            nbi, nbj = residuals.shape[:2]
            mode = _MODE_LORENZO if names[0] == "lorenzo" else _MODE_REGRESSION
            return np.full((nbi, nbj), mode, dtype=np.int64), residuals

        lorenzo = candidates["lorenzo"]
        regression = candidates["regression"]
        cost_lorenzo = np.log2(np.abs(lorenzo) + 1.0).sum(axis=(2, 3))
        cost_regression = np.log2(np.abs(regression) + 1.0).sum(axis=(2, 3))
        # ~3 coefficients x ~16 bits of overhead per regression block.
        cost_regression = cost_regression + 48.0
        modes = np.where(cost_regression < cost_lorenzo, _MODE_REGRESSION, _MODE_LORENZO)
        residuals = np.where(
            (modes == _MODE_REGRESSION)[:, :, None, None], regression, lorenzo
        )
        return modes.astype(np.int64), residuals

    def _compress_raw(self, values: np.ndarray, original_dtype: np.dtype) -> CompressedField:
        payload = bytearray()
        payload.extend(_MAGIC)
        payload.extend(encode_varint(1))  # raw flag
        payload.extend(encode_varint(values.shape[0]))
        payload.extend(encode_varint(values.shape[1]))
        payload.extend(struct.pack("<d", self.error_bound))
        payload.extend(values.astype("<f8").tobytes())
        return CompressedField(
            data=bytes(payload),
            original_shape=values.shape,
            original_dtype=original_dtype,
            compressor=self.name,
            error_bound=self.error_bound,
            reconstruction=values.copy(),
            extras={"raw_fallback": 1.0},
        )

    # ------------------------------------------------------------------
    # decompression
    # ------------------------------------------------------------------
    def decompress(self, compressed: CompressedField) -> np.ndarray:
        blob = compressed.data
        if blob[:4] != _MAGIC:
            raise CompressorError("not an SZ-like container")
        pos = 4
        raw_flag, pos = decode_varint(blob, pos)
        rows, pos = decode_varint(blob, pos)
        cols, pos = decode_varint(blob, pos)
        if raw_flag == 1:
            (error_bound,) = struct.unpack_from("<d", blob, pos)
            pos += 8
            values = np.frombuffer(blob, dtype="<f8", count=rows * cols, offset=pos)
            return values.reshape(rows, cols).astype(np.float64)

        block_size, pos = decode_varint(blob, pos)
        (error_bound,) = struct.unpack_from("<d", blob, pos)
        pos += 8
        code_radius, pos = decode_varint(blob, pos)
        nbi, pos = decode_varint(blob, pos)
        nbj, pos = decode_varint(blob, pos)
        step = 2.0 * error_bound

        mode_bytes_len, pos = decode_varint(blob, pos)
        mode_bits = np.frombuffer(blob[pos : pos + mode_bytes_len], dtype=np.uint8)
        pos += mode_bytes_len
        modes = np.unpackbits(mode_bits)[: nbi * nbj].reshape(nbi, nbj).astype(np.int64)

        coeff_len, pos = decode_varint(blob, pos)
        coeff_end = pos + coeff_len
        n_regression = int((modes == _MODE_REGRESSION).sum())
        coeff_codes = np.zeros((n_regression, 3), dtype=np.int64)
        for k in range(n_regression * 3):
            value, pos = decode_signed_varint(blob, pos)
            coeff_codes[k // 3, k % 3] = value
        if pos != coeff_end:
            raise CompressorError("regression coefficient stream length mismatch")

        symbol_len, pos = decode_varint(blob, pos)
        symbols = self.backend.decode_symbols(blob[pos : pos + symbol_len])
        pos += symbol_len

        n_outliers, pos = decode_varint(blob, pos)
        outlier_len, pos = decode_varint(blob, pos)
        outliers = np.zeros(n_outliers, dtype=np.int64)
        for k in range(n_outliers):
            value, pos = decode_signed_varint(blob, pos)
            outliers[k] = value

        bs = block_size
        residuals = symbols.astype(np.int64) - (code_radius + 1)
        outlier_positions = np.flatnonzero(symbols == 0)
        residuals[outlier_positions] = outliers
        residual_blocks = residuals.reshape(nbi, nbj, bs, bs)

        code_blocks = np.empty_like(residual_blocks)
        lorenzo_mask = modes == _MODE_LORENZO
        if lorenzo_mask.any():
            code_blocks[lorenzo_mask] = block_lorenzo_reconstruct(
                residual_blocks[lorenzo_mask][None, ...].reshape(-1, 1, bs, bs)
            ).reshape(-1, bs, bs)
        regression_mask = modes == _MODE_REGRESSION
        if regression_mask.any():
            quantized_coeffs = dequantize_plane_coefficients(
                coeff_codes, error_bound, bs
            ).reshape(n_regression, 1, 3)
            predictions = plane_predictions(quantized_coeffs, bs).reshape(-1, bs, bs)
            predicted_codes = np.rint(predictions / step).astype(np.int64)
            code_blocks[regression_mask] = (
                residual_blocks[regression_mask] + predicted_codes
            )

        q = reassemble_blocks(code_blocks, (nbi * bs, nbj * bs))
        field = q.astype(np.float64) * step
        return field[:rows, :cols]
