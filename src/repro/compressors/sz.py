"""SZ-like error-bounded lossy compressor.

Follows the algorithmic pipeline of SZ 2.x as described in the paper's
Section II-A:

1. the field is scanned block by block (16x16 for 2D data);
2. every block is predicted with *both* the Lorenzo predictor and the
   hyperplane regression predictor, and the cheaper of the two (in
   estimated coding cost) is selected per block;
3. prediction residuals are linearly quantized against the absolute error
   bound; residual codes outside the quantization radius are stored exactly
   in a side channel ("unpredictable" values);
4. the quantization-code stream is entropy coded (run-length + canonical
   Huffman by default, optionally the LZ77+Huffman Zstd-like backend).

Steps 1-3 are the shared, fully vectorized block-codec engine
(:class:`repro.compressors.blocks.BlockCodec`); this module owns only the
container format: serializing the engine's arrays (modes, symbols,
regression coefficients, exact outliers) into a self-describing byte blob
and back.  The coefficient and outlier side channels use the array varint
codecs, so neither direction loops over elements in Python.

See the engine's docstring for why predicting in pre-quantized integer-code
space is equivalent to the reference feedback formulation; the scalar
reference is kept in :func:`repro.compressors.lorenzo.lorenzo_predict_feedback`
and the test suite checks the two agree on the error-bound invariant and
produce similar code statistics.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np

from repro.compressors.base import CompressedField, Compressor, CompressorError, LosslessBackend
from repro.compressors.blocks import (
    DEFAULT_CODE_RADIUS,
    MODE_REGRESSION,
    BlockCodec,
)
from repro.encoding.varint import (
    decode_signed_varint_array,
    decode_varint,
    encode_signed_varint_array,
    encode_varint,
)
from repro.utils.validation import ensure_2d, ensure_float_array

__all__ = ["SZCompressor"]

_MAGIC = b"SZR1"


class SZCompressor(Compressor):
    """SZ-like prediction-based error-bounded compressor.

    Parameters
    ----------
    error_bound:
        Absolute error bound.
    block_size:
        Edge length of the prediction blocks (16 in SZ for 2D data).
    predictors:
        Subset of ``{"lorenzo", "regression"}``; the default enables both
        with per-block selection, matching SZ.  Restricting to a single
        predictor is used by the predictor ablation benchmark.
    backend:
        Lossless backend name (``"huffman"``, ``"zstd"`` or ``"raw"``).
    code_radius:
        Maximum |quantization code| before a value is routed to the exact
        side channel (SZ's default corresponds to 2^16 intervals).
    """

    name = "sz"

    def __init__(
        self,
        error_bound: float = 1e-3,
        *,
        block_size: int = 16,
        predictors: Tuple[str, ...] = ("lorenzo", "regression"),
        backend: str = "huffman",
        code_radius: int = DEFAULT_CODE_RADIUS,
    ) -> None:
        super().__init__(error_bound)
        self._codec = BlockCodec(
            error_bound,
            block_size=block_size,
            predictors=predictors,
            code_radius=code_radius,
        )
        self.backend = LosslessBackend(backend)

    @property
    def block_size(self) -> int:
        return self._codec.block_size

    @property
    def predictors(self) -> Tuple[str, ...]:
        return self._codec.predictors

    @property
    def code_radius(self) -> int:
        return self._codec.code_radius

    # ------------------------------------------------------------------
    # compression
    # ------------------------------------------------------------------
    def compress(self, field: np.ndarray) -> CompressedField:
        original = ensure_2d(field, "field")
        original_dtype = np.asarray(field).dtype
        values = ensure_float_array(original, "field")

        encoding = self._codec.encode(values)
        if encoding is None:
            # Error bound too small relative to the data magnitude for the
            # integer grid: fall back to verbatim storage (CR ~= 1).
            return self._compress_raw(values, original_dtype)
        max_error = float(np.abs(values - encoding.reconstruction).max(initial=0.0))
        if max_error > self.error_bound:
            # The grid reconstruction is mathematically within eb, but at
            # extreme magnitude/bound ratios floating-point round-off on
            # q*step can exceed it by a few ulps; raw storage keeps the
            # bound a hard guarantee.
            return self._compress_raw(values, original_dtype)

        payload = bytearray()
        payload.extend(_MAGIC)
        payload.extend(encode_varint(0))  # container version / raw flag = 0
        payload.extend(encode_varint(encoding.original_shape[0]))
        payload.extend(encode_varint(encoding.original_shape[1]))
        payload.extend(encode_varint(self.block_size))
        payload.extend(struct.pack("<d", self.error_bound))
        payload.extend(encode_varint(self.code_radius))
        payload.extend(encode_varint(encoding.nbi))
        payload.extend(encode_varint(encoding.nbj))

        mode_bits = np.packbits(encoding.modes.astype(np.uint8).ravel())
        payload.extend(encode_varint(len(mode_bits)))
        payload.extend(mode_bits.tobytes())

        coeff_blob = b""
        if encoding.coeff_codes is not None:
            coeff_blob = encode_signed_varint_array(encoding.coeff_codes.ravel())
        payload.extend(encode_varint(len(coeff_blob)))
        payload.extend(coeff_blob)

        symbol_blob = self.backend.encode_symbols(encoding.symbols.ravel())
        payload.extend(encode_varint(len(symbol_blob)))
        payload.extend(symbol_blob)

        outlier_blob = encode_signed_varint_array(encoding.outliers)
        payload.extend(encode_varint(int(encoding.outliers.size)))
        payload.extend(encode_varint(len(outlier_blob)))
        payload.extend(outlier_blob)

        compressed = CompressedField(
            data=bytes(payload),
            original_shape=tuple(encoding.original_shape),
            original_dtype=original_dtype,
            compressor=self.name,
            error_bound=self.error_bound,
            reconstruction=encoding.reconstruction,
            extras={
                "unpredictable_fraction": encoding.unpredictable_fraction,
                "regression_block_fraction": encoding.regression_fraction,
                "n_blocks": float(encoding.nbi * encoding.nbj),
            },
        )
        self.check_error_bound(values, encoding.reconstruction)
        return compressed

    def _compress_raw(self, values: np.ndarray, original_dtype: np.dtype) -> CompressedField:
        payload = bytearray()
        payload.extend(_MAGIC)
        payload.extend(encode_varint(1))  # raw flag
        payload.extend(encode_varint(values.shape[0]))
        payload.extend(encode_varint(values.shape[1]))
        payload.extend(struct.pack("<d", self.error_bound))
        payload.extend(values.astype("<f8").tobytes())
        return CompressedField(
            data=bytes(payload),
            original_shape=values.shape,
            original_dtype=original_dtype,
            compressor=self.name,
            error_bound=self.error_bound,
            reconstruction=values.copy(),
            extras={"raw_fallback": 1.0},
        )

    # ------------------------------------------------------------------
    # decompression
    # ------------------------------------------------------------------
    def decompress(self, compressed: CompressedField) -> np.ndarray:
        blob = compressed.data
        if blob[:4] != _MAGIC:
            raise CompressorError("not an SZ-like container")
        pos = 4
        raw_flag, pos = decode_varint(blob, pos)
        rows, pos = decode_varint(blob, pos)
        cols, pos = decode_varint(blob, pos)
        if raw_flag == 1:
            (error_bound,) = struct.unpack_from("<d", blob, pos)
            pos += 8
            values = np.frombuffer(blob, dtype="<f8", count=rows * cols, offset=pos)
            return values.reshape(rows, cols).astype(np.float64)

        block_size, pos = decode_varint(blob, pos)
        (error_bound,) = struct.unpack_from("<d", blob, pos)
        pos += 8
        code_radius, pos = decode_varint(blob, pos)
        nbi, pos = decode_varint(blob, pos)
        nbj, pos = decode_varint(blob, pos)

        mode_bytes_len, pos = decode_varint(blob, pos)
        mode_bits = np.frombuffer(blob[pos : pos + mode_bytes_len], dtype=np.uint8)
        pos += mode_bytes_len
        modes = np.unpackbits(mode_bits)[: nbi * nbj].reshape(nbi, nbj).astype(np.int64)

        coeff_len, pos = decode_varint(blob, pos)
        coeff_end = pos + coeff_len
        n_regression = int((modes == MODE_REGRESSION).sum())
        coeff_codes = None
        if n_regression:
            flat_coeffs, pos = decode_signed_varint_array(blob, n_regression * 3, pos)
            coeff_codes = flat_coeffs.reshape(n_regression, 3)
        if pos != coeff_end:
            raise CompressorError("regression coefficient stream length mismatch")

        symbol_len, pos = decode_varint(blob, pos)
        symbols = self.backend.decode_symbols(blob[pos : pos + symbol_len])
        pos += symbol_len

        n_outliers, pos = decode_varint(blob, pos)
        outlier_len, pos = decode_varint(blob, pos)
        outliers = np.empty(0, dtype=np.int64)
        if n_outliers:
            outliers, pos = decode_signed_varint_array(blob, n_outliers, pos)

        codec = BlockCodec(
            error_bound, block_size=block_size, code_radius=code_radius
        )
        return codec.decode(
            modes,
            symbols.reshape(nbi * nbj, block_size * block_size),
            outliers,
            coeff_codes,
            (rows, cols),
        )
