"""Block decorrelating transform used by the ZFP-like compressor.

ZFP decorrelates every 4x4 block with a separable near-orthogonal
transform — the same principle as JPEG's DCT, as the paper notes.  This
module implements the separable transform machinery on stacks of blocks:

* :func:`orthonormal_dct_matrix` builds the orthonormal DCT-II matrix used
  as the decorrelating basis.  Orthonormality gives the clean error-bound
  argument exploited by :class:`repro.compressors.zfp.ZFPCompressor`: the
  L2 norm of the coefficient quantization error equals the L2 norm of the
  reconstruction error, so a coefficient step of ``tol/(2*block_size)``
  guarantees a point-wise error below ``tol`` (see the ZFP module
  docstring for the full argument).
* :func:`forward_block_transform` / :func:`inverse_block_transform` apply
  the separable transform to a ``(n_blocks, bs, bs)`` stack with two
  matrix multiplications (no Python loops).
* :func:`sequency_order` gives the classic zig-zag (low frequency first)
  coefficient ordering; streaming coefficients in sequency-major order
  groups the near-zero high-frequency codes of *all* blocks together,
  which is what makes the run-length + Huffman backend effective.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from repro.utils.validation import ensure_positive

__all__ = [
    "orthonormal_dct_matrix",
    "forward_block_transform",
    "inverse_block_transform",
    "sequency_order",
]


@lru_cache(maxsize=None)
def orthonormal_dct_matrix(size: int) -> np.ndarray:
    """Orthonormal DCT-II matrix of the given size.

    Rows are the basis vectors; ``D @ D.T == I`` holds to machine
    precision, which the test-suite asserts.
    """

    ensure_positive(size, "size")
    n = int(size)
    k = np.arange(n)[:, None]
    x = np.arange(n)[None, :]
    matrix = np.cos(np.pi * (2 * x + 1) * k / (2.0 * n))
    matrix[0, :] *= np.sqrt(1.0 / n)
    matrix[1:, :] *= np.sqrt(2.0 / n)
    return matrix


def forward_block_transform(blocks: np.ndarray) -> np.ndarray:
    """Apply the separable orthonormal transform to a stack of square blocks.

    ``blocks`` has shape ``(n_blocks, bs, bs)``; the result has the same
    shape and contains the transform coefficients (DC in the top-left
    corner of each block).
    """

    blocks = np.asarray(blocks, dtype=np.float64)
    if blocks.ndim != 3 or blocks.shape[1] != blocks.shape[2]:
        raise ValueError(f"expected (n_blocks, bs, bs) stack, got {blocks.shape}")
    basis = orthonormal_dct_matrix(blocks.shape[1])
    return np.einsum("ab,nbc,dc->nad", basis, blocks, basis, optimize=True)


def inverse_block_transform(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_block_transform`."""

    coefficients = np.asarray(coefficients, dtype=np.float64)
    if coefficients.ndim != 3 or coefficients.shape[1] != coefficients.shape[2]:
        raise ValueError(f"expected (n_blocks, bs, bs) stack, got {coefficients.shape}")
    basis = orthonormal_dct_matrix(coefficients.shape[1])
    return np.einsum("ba,nbc,cd->nad", basis, coefficients, basis, optimize=True)


@lru_cache(maxsize=None)
def sequency_order(size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Zig-zag ordering of a ``size x size`` coefficient block.

    Returns ``(rows, cols)`` index arrays such that
    ``coefficients[..., rows, cols]`` lists coefficients from lowest to
    highest total frequency.
    """

    ensure_positive(size, "size")
    n = int(size)
    indices = [(i, j) for i in range(n) for j in range(n)]
    # Order by anti-diagonal (total frequency), then alternate direction for
    # the classic zig-zag path.
    indices.sort(key=lambda ij: (ij[0] + ij[1], ij[1] if (ij[0] + ij[1]) % 2 == 0 else ij[0]))
    rows = np.array([i for i, _ in indices], dtype=np.int64)
    cols = np.array([j for _, j in indices], dtype=np.int64)
    return rows, cols
