"""Block decorrelating transform used by the ZFP-like compressor.

ZFP decorrelates every 4x4 block with a separable near-orthogonal
transform — the same principle as JPEG's DCT, as the paper notes.  This
module implements the separable transform machinery on stacks of blocks:

* :func:`orthonormal_dct_matrix` builds the orthonormal DCT-II matrix used
  as the decorrelating basis.  Orthonormality gives the clean error-bound
  argument exploited by :class:`repro.compressors.zfp.ZFPCompressor`: the
  L2 norm of the coefficient quantization error equals the L2 norm of the
  reconstruction error, so a coefficient step of ``tol/(2*block_size)``
  guarantees a point-wise error below ``tol`` (see the ZFP module
  docstring for the full argument).
* :func:`forward_block_transform` / :func:`inverse_block_transform` apply
  the separable transform to a ``(n_blocks, bs, bs)`` stack with two
  matrix multiplications (no Python loops).
* :func:`sequency_order` gives the classic zig-zag (low frequency first)
  coefficient ordering; streaming coefficients in sequency-major order
  groups the near-zero high-frequency codes of *all* blocks together,
  which is what makes the run-length + Huffman backend effective.

Beyond the transform itself, the module holds the array-engine stages of
the ZFP-like pipeline (the transform-domain analogue of
:mod:`repro.compressors.blocks`), so the compressor is a pure container
layer:

* :func:`block_exponents` — block-floating-point normalisation over the
  whole block stack (per-block ``emax``, negligible-block detection).
* :func:`quantize_block_coefficients` — the coefficient → integer-code
  cast with non-finite/overflow masking evaluated *before* the
  ``float64 -> int64`` cast (casting a non-finite value is undefined, and
  ``np.abs(np.int64.min)`` is still negative, so a post-cast magnitude
  check can miss).
* :func:`sequency_plane_widths` / :func:`group_planes_by_width` — the
  bit-plane grouping of the sequency-major coefficient stream: planes are
  grouped by the bit width of their zigzag codes so the entropy coder
  sees one short alphabet per group instead of one huge symbol range,
  and all-zero (width 0) groups cost nothing.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.obs.trace import traced
from repro.utils.validation import ensure_positive

__all__ = [
    "orthonormal_dct_matrix",
    "forward_block_transform",
    "inverse_block_transform",
    "sequency_order",
    "sequency_order_nd",
    "block_exponents",
    "quantize_block_coefficients",
    "sequency_plane_widths",
    "group_planes_by_width",
    "zigzag_encode",
    "zigzag_decode",
]


def zigzag_encode(codes: np.ndarray) -> np.ndarray:
    """Map signed int64 codes to the non-negative zigzag alphabet."""

    codes = np.asarray(codes, dtype=np.int64)
    return (codes << 1) ^ (codes >> 63)


def zigzag_decode(symbols: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""

    symbols = np.asarray(symbols, dtype=np.int64)
    return (symbols >> 1) ^ -(symbols & 1)


def _check_block_stack(blocks: np.ndarray, what: str) -> int:
    """Validate a ``(n_blocks, bs, bs[, bs])`` stack; returns the block ndim."""

    if blocks.ndim not in (3, 4) or len(set(blocks.shape[1:])) != 1:
        raise ValueError(f"expected (n_blocks, bs, bs[, bs]) {what}, got {blocks.shape}")
    return blocks.ndim - 1


@lru_cache(maxsize=None)
def orthonormal_dct_matrix(size: int) -> np.ndarray:
    """Orthonormal DCT-II matrix of the given size.

    Rows are the basis vectors; ``D @ D.T == I`` holds to machine
    precision, which the test-suite asserts.
    """

    ensure_positive(size, "size")
    n = int(size)
    k = np.arange(n)[:, None]
    x = np.arange(n)[None, :]
    matrix = np.cos(np.pi * (2 * x + 1) * k / (2.0 * n))
    matrix[0, :] *= np.sqrt(1.0 / n)
    matrix[1:, :] *= np.sqrt(2.0 / n)
    return matrix


@traced("codec.transform.forward", "codec")
def forward_block_transform(blocks: np.ndarray) -> np.ndarray:
    """Apply the separable orthonormal transform to a stack of square blocks.

    ``blocks`` has shape ``(n_blocks, bs, bs)`` (2D blocks) or
    ``(n_blocks, bs, bs, bs)`` (3D blocks); the result has the same shape
    and contains the transform coefficients (DC in the low-index corner of
    each block).
    """

    blocks = np.asarray(blocks, dtype=np.float64)
    ndim = _check_block_stack(blocks, "stack")
    basis = orthonormal_dct_matrix(blocks.shape[1])
    if ndim == 2:
        return np.einsum("ab,nbc,dc->nad", basis, blocks, basis, optimize=True)
    return np.einsum("ab,cd,ef,nbdf->nace", basis, basis, basis, blocks, optimize=True)


@traced("codec.transform.inverse", "codec")
def inverse_block_transform(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_block_transform`."""

    coefficients = np.asarray(coefficients, dtype=np.float64)
    ndim = _check_block_stack(coefficients, "stack")
    basis = orthonormal_dct_matrix(coefficients.shape[1])
    if ndim == 2:
        return np.einsum("ba,nbc,cd->nad", basis, coefficients, basis, optimize=True)
    return np.einsum(
        "ba,dc,fe,nbdf->nace", basis, basis, basis, coefficients, optimize=True
    )


@lru_cache(maxsize=None)
def sequency_order(size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Zig-zag ordering of a ``size x size`` coefficient block.

    Returns ``(rows, cols)`` index arrays such that
    ``coefficients[..., rows, cols]`` lists coefficients from lowest to
    highest total frequency.
    """

    ensure_positive(size, "size")
    n = int(size)
    indices = [(i, j) for i in range(n) for j in range(n)]
    # Order by anti-diagonal (total frequency), then alternate direction for
    # the classic zig-zag path.
    indices.sort(key=lambda ij: (ij[0] + ij[1], ij[1] if (ij[0] + ij[1]) % 2 == 0 else ij[0]))
    rows = np.array([i for i, _ in indices], dtype=np.int64)
    cols = np.array([j for _, j in indices], dtype=np.int64)
    return rows, cols


@lru_cache(maxsize=None)
def sequency_order_nd(size: int, ndim: int) -> Tuple[np.ndarray, ...]:
    """Sequency (low total frequency first) ordering of an N-d block.

    Returns ``ndim`` index arrays such that
    ``coefficients[..., idx[0], idx[1], ...]`` lists the ``size**ndim``
    coefficients from lowest to highest total frequency.  For ``ndim=2``
    this is exactly :func:`sequency_order` (the classic zig-zag); for
    ``ndim=3`` cells are ordered by anti-diagonal plane ``i+j+k`` with a
    deterministic lexicographic tie-break — plane grouping only needs the
    magnitude-decay property, not a particular path within a plane.
    """

    ensure_positive(size, "size")
    ensure_positive(ndim, "ndim")
    if ndim == 2:
        return sequency_order(size)
    n = int(size)
    cells = [
        tuple(idx) for idx in np.ndindex(*((n,) * ndim))
    ]
    cells.sort(key=lambda idx: (sum(idx),) + idx)
    return tuple(
        np.array([cell[axis] for cell in cells], dtype=np.int64)
        for axis in range(ndim)
    )


# ----------------------------------------------------------------------
# array-engine stages of the ZFP-like pipeline
# ----------------------------------------------------------------------
def block_exponents(
    blocks: np.ndarray, error_bound: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Block-floating-point normalisation of a ``(n_blocks, bs, bs[, bs])`` stack.

    Returns ``(emax, negligible, normalised)``: the per-block power-of-two
    exponent (smallest power of two >= max |value|), the mask of blocks
    whose magnitude is already below the tolerance (they compress to an
    all-zero block regardless, keeping the exponent side channel small),
    and the normalised blocks (``0`` where negligible) on the [-1, 1]
    scale.
    """

    blocks = np.asarray(blocks, dtype=np.float64)
    ndim = _check_block_stack(blocks, "stack")
    ensure_positive(error_bound, "error_bound")
    block_axes = tuple(range(1, ndim + 1))
    block_max = np.abs(blocks).max(axis=block_axes)
    emax = np.zeros(blocks.shape[0], dtype=np.int64)
    # Non-finite block maxima (inf input, or NaN which already fails the
    # > 0 test) would give an infinite exponent whose int64 cast wraps
    # silently; leave emax at 0 so those blocks stay non-finite after
    # normalisation and route to exact storage in quantization.
    nonzero = (block_max > 0) & np.isfinite(block_max)
    emax[nonzero] = np.ceil(np.log2(block_max[nonzero])).astype(np.int64)
    negligible = block_max <= error_bound
    normalised = np.zeros_like(blocks)
    active = ~negligible
    # ldexp scales by 2^-emax through exponent arithmetic: unlike
    # ``blocks * exp2(-emax)`` it cannot overflow for subnormal-magnitude
    # blocks (|blocks| <= 2^emax, so the result is always <= 1).
    expand = (slice(None),) + (None,) * ndim
    normalised[active] = np.ldexp(blocks[active], -emax[active][expand])
    return emax, negligible, normalised


def quantize_block_coefficients(
    coefficients: np.ndarray,
    step: np.ndarray,
    active: np.ndarray,
    code_radius: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize transform coefficients with a per-block step, safely.

    Returns ``(codes, overflow)``: int64 codes (``0`` for inactive blocks
    and for every coefficient of an overflowing block) and the per-block
    mask of blocks whose ratio ``coefficient / step`` was non-finite or
    beyond ``code_radius`` — those must be stored exactly.  The masking
    happens on the *float* ratios, before any ``int64`` cast: casting a
    non-finite float is undefined behaviour, and the sign trap
    ``np.abs(np.int64.min) < 0`` means a post-cast magnitude check can
    silently pass garbage through.
    """

    coefficients = np.asarray(coefficients, dtype=np.float64)
    ndim = _check_block_stack(coefficients, "stack")
    active = np.asarray(active, dtype=bool)
    step = np.asarray(step, dtype=np.float64)
    ensure_positive(code_radius, "code_radius")
    codes = np.zeros(coefficients.shape, dtype=np.int64)
    overflow = np.zeros(coefficients.shape[0], dtype=bool)
    if not active.any():
        return codes, overflow
    expand = (slice(None),) + (None,) * ndim
    with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
        scaled = np.rint(coefficients[active] / step[active][expand])
    safe = np.isfinite(scaled) & (np.abs(scaled) <= code_radius)
    # A non-finite step (the per-block step itself can overflow at extreme
    # magnitude/bound combinations) silently yields in-range ratios; such
    # blocks must be stored exactly too.
    overflow[active] = ~safe.all(axis=tuple(range(1, ndim + 1))) | ~np.isfinite(
        step[active]
    )
    codes[active] = np.where(safe, scaled, 0.0).astype(np.int64)
    codes[overflow] = 0
    return codes, overflow


def sequency_plane_widths(zigzag_planes: np.ndarray) -> np.ndarray:
    """Bit width of each sequency plane of a zigzag-coded stream.

    ``zigzag_planes`` has shape ``(n_blocks, n_planes)`` (non-negative
    zigzag symbols, sequency-ordered planes).  Returns the per-plane bit
    width ``bit_length(max symbol)`` with ``0`` for all-zero planes.
    """

    zigzag_planes = np.asarray(zigzag_planes, dtype=np.int64)
    if zigzag_planes.ndim != 2:
        raise ValueError(f"expected (n_blocks, n_planes) stream, got {zigzag_planes.shape}")
    if zigzag_planes.size == 0:
        return np.zeros(zigzag_planes.shape[1], dtype=np.int64)
    maxima = zigzag_planes.max(axis=0)
    # bit_length via frexp: frexp(m) = (f, e) with m = f * 2^e, 0.5 <= f < 1,
    # so e is exactly bit_length(m) for positive integers.
    widths = np.frexp(maxima.astype(np.float64))[1].astype(np.int64)
    widths[maxima <= 0] = 0
    return widths


def group_planes_by_width(widths: np.ndarray) -> List[Tuple[int, int, int]]:
    """Partition sequency planes into runs of equal bit width.

    Returns ``[(start_plane, end_plane, width), ...]`` covering all planes
    in order.  Coefficient magnitudes decay with sequency, so equal-width
    runs are long; each run becomes one entropy-coded stream with a short
    alphabet, and width-0 runs (all-zero planes) need no stream at all.
    """

    widths = np.asarray(widths, dtype=np.int64)
    if widths.ndim != 1:
        raise ValueError(f"expected 1D width array, got {widths.shape}")
    if widths.size == 0:
        return []
    boundaries = np.flatnonzero(np.diff(widths)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [widths.size]))
    return [(int(s), int(e), int(widths[s])) for s, e in zip(starts, ends)]
