"""MGARD-like multilevel error-bounded compressor.

Mirrors the structure the paper attributes to MGARD: the field is
decomposed into **multilevel coefficients** on a dyadic grid hierarchy
(:mod:`repro.compressors.multigrid`), the coefficients are quantized level
by level, and the quantized stream is handed to a lossless backend.
Because coarse levels summarise the entire field, the compressor "sees"
global structure in a way the block-local SZ and ZFP cannot — which is
exactly why the paper finds MGARD's compression ratio to be less sensitive
to the (local) correlation-range statistics.

Error-budget argument
---------------------
Reconstruction proceeds coarse-to-fine; at every level the prolongation is
a convex (linear-interpolation) combination of the coarser level, so it
does not amplify errors, and adding the dequantized details contributes at
most that level's quantization error.  Splitting the absolute tolerance
``eb`` into per-level budgets that sum to ``eb`` therefore bounds the total
point-wise error by ``eb``.  The split favours finer levels (which carry
most coefficients) geometrically; the compressor verifies the bound on its
own reconstruction before returning.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

import numpy as np

from repro.compressors.base import CompressedField, Compressor, CompressorError, LosslessBackend
from repro.compressors.blocks import quantize_to_grid
from repro.compressors.multigrid import (
    MultigridDecomposition,
    decompose,
    detail_mask,
    max_levels,
    prolong,
)
from repro.encoding.varint import decode_varint, encode_varint
from repro.utils.validation import ensure_2d, ensure_float_array

__all__ = ["MGARDCompressor"]

_MAGIC = b"MGR1"
_CODE_RADIUS = 1 << 40


class MGARDCompressor(Compressor):
    """MGARD-like multilevel error-bounded compressor.

    Parameters
    ----------
    error_bound:
        Absolute error bound.
    levels:
        Number of coarsening steps; ``None`` uses as many as the field
        admits (down to a 4x4 coarsest grid).
    backend:
        Lossless backend for the quantized coefficient stream.
    budget_ratio:
        Geometric ratio of the per-level error budgets: level ``l`` (finest
        = 0) receives a budget proportional to ``budget_ratio**l``.  The
        default weights the finest level most heavily, since its detail
        coefficients dominate the stream.
    """

    name = "mgard"

    def __init__(
        self,
        error_bound: float = 1e-3,
        *,
        levels: int | None = None,
        backend: str = "huffman",
        budget_ratio: float = 0.5,
    ) -> None:
        super().__init__(error_bound)
        if levels is not None and levels < 1:
            raise ValueError("levels must be >= 1 (or None for automatic)")
        if not 0 < budget_ratio <= 1:
            raise ValueError("budget_ratio must be in (0, 1]")
        self.levels = levels
        self.backend = LosslessBackend(backend)
        self.budget_ratio = float(budget_ratio)

    # ------------------------------------------------------------------
    def _level_budgets(self, n_levels: int) -> np.ndarray:
        """Per-level absolute error budgets (finest first, last entry = coarse grid)."""

        weights = self.budget_ratio ** np.arange(n_levels + 1, dtype=np.float64)
        weights /= weights.sum()
        return self.error_bound * weights

    # ------------------------------------------------------------------
    def compress(self, field: np.ndarray) -> CompressedField:
        original = ensure_2d(field, "field")
        original_dtype = np.asarray(field).dtype
        values = ensure_float_array(original, "field")
        if not np.all(np.isfinite(values)):
            raise CompressorError("mgard: field contains non-finite values")

        available = max_levels(values.shape)
        n_levels = available if self.levels is None else min(self.levels, available)
        if n_levels == 0:
            # Field too small for a hierarchy: store verbatim.
            return self._compress_raw(values, original_dtype)

        decomposition = decompose(values, n_levels)
        budgets = self._level_budgets(decomposition.n_levels)

        # Per-level grid quantization via the shared block-codec engine; any
        # level overflowing the integer grid routes the field to raw storage.
        detail_codes: List[np.ndarray] = []
        for level, detail in enumerate(decomposition.details):
            codes = quantize_to_grid(detail, 2.0 * budgets[level], max_code=_CODE_RADIUS)
            if codes is None:
                return self._compress_raw(values, original_dtype)
            detail_codes.append(codes)
        coarse_codes = quantize_to_grid(
            decomposition.coarse, 2.0 * budgets[-1], max_code=_CODE_RADIUS
        )
        if coarse_codes is None:
            return self._compress_raw(values, original_dtype)

        reconstruction = self._reconstruct(
            coarse_codes, detail_codes, decomposition.shapes, budgets
        )
        max_error = float(np.abs(reconstruction - values).max())
        if max_error > self.error_bound:
            # The additive budget argument makes this unreachable, but a raw
            # fallback keeps the bound a hard guarantee even in pathological
            # floating-point corner cases.
            return self._compress_raw(values, original_dtype)

        # ------------------------------------------------------------------
        payload = bytearray()
        payload.extend(_MAGIC)
        payload.extend(encode_varint(0))
        payload.extend(encode_varint(values.shape[0]))
        payload.extend(encode_varint(values.shape[1]))
        payload.extend(struct.pack("<d", self.error_bound))
        payload.extend(struct.pack("<d", self.budget_ratio))
        payload.extend(encode_varint(decomposition.n_levels))

        # Level-major symbol stream: coarse grid first, then details from
        # coarsest to finest — the coarse part is tiny and the fine details
        # (mostly near zero for smooth data) dominate, giving the RLE +
        # Huffman backend long runs to exploit.
        stream_parts = [coarse_codes.ravel()]
        for detail in reversed(detail_codes):
            stream_parts.append(detail.ravel())
        stream = np.concatenate(stream_parts)
        offset = int(stream.min()) if stream.size else 0
        payload.extend(encode_varint(offset + 2**40))
        symbol_blob = self.backend.encode_symbols(stream - offset)
        payload.extend(encode_varint(len(symbol_blob)))
        payload.extend(symbol_blob)

        compressed = CompressedField(
            data=bytes(payload),
            original_shape=values.shape,
            original_dtype=original_dtype,
            compressor=self.name,
            error_bound=self.error_bound,
            reconstruction=reconstruction,
            extras={
                "n_levels": float(decomposition.n_levels),
                "max_error": max_error,
            },
        )
        self.check_error_bound(values, reconstruction)
        return compressed

    # ------------------------------------------------------------------
    def _reconstruct(
        self,
        coarse_codes: np.ndarray,
        detail_codes: List[np.ndarray],
        shapes: List[Tuple[int, int]],
        budgets: np.ndarray,
    ) -> np.ndarray:
        current = coarse_codes.astype(np.float64) * (2.0 * budgets[-1])
        for level in range(len(detail_codes) - 1, -1, -1):
            fine_shape = shapes[level]
            predicted = prolong(current, fine_shape)
            mask = detail_mask(fine_shape)
            fine = predicted.copy()
            fine[mask] += detail_codes[level].astype(np.float64) * (2.0 * budgets[level])
            fine[::2, ::2] = current
            current = fine
        return current

    def _compress_raw(self, values: np.ndarray, original_dtype: np.dtype) -> CompressedField:
        payload = bytearray()
        payload.extend(_MAGIC)
        payload.extend(encode_varint(1))
        payload.extend(encode_varint(values.shape[0]))
        payload.extend(encode_varint(values.shape[1]))
        payload.extend(struct.pack("<d", self.error_bound))
        payload.extend(values.astype("<f8").tobytes())
        return CompressedField(
            data=bytes(payload),
            original_shape=values.shape,
            original_dtype=original_dtype,
            compressor=self.name,
            error_bound=self.error_bound,
            reconstruction=values.copy(),
            extras={"raw_fallback": 1.0},
        )

    # ------------------------------------------------------------------
    def decompress(self, compressed: CompressedField) -> np.ndarray:
        blob = compressed.data
        if blob[:4] != _MAGIC:
            raise CompressorError("not an MGARD-like container")
        pos = 4
        raw_flag, pos = decode_varint(blob, pos)
        rows, pos = decode_varint(blob, pos)
        cols, pos = decode_varint(blob, pos)
        if raw_flag == 1:
            pos += 8
            values = np.frombuffer(blob, dtype="<f8", count=rows * cols, offset=pos)
            return values.reshape(rows, cols).astype(np.float64)

        (error_bound,) = struct.unpack_from("<d", blob, pos)
        pos += 8
        (budget_ratio,) = struct.unpack_from("<d", blob, pos)
        pos += 8
        n_levels, pos = decode_varint(blob, pos)

        offset_shifted, pos = decode_varint(blob, pos)
        offset = offset_shifted - 2**40
        symbol_len, pos = decode_varint(blob, pos)
        stream = self.backend.decode_symbols(blob[pos : pos + symbol_len]) + offset

        # Rebuild the level shapes from the stored field shape.
        shapes: List[Tuple[int, int]] = [(rows, cols)]
        for _ in range(n_levels):
            prev = shapes[-1]
            shapes.append(((prev[0] + 1) // 2, (prev[1] + 1) // 2))

        weights = budget_ratio ** np.arange(n_levels + 1, dtype=np.float64)
        weights /= weights.sum()
        budgets = error_bound * weights

        coarse_shape = shapes[-1]
        coarse_count = coarse_shape[0] * coarse_shape[1]
        coarse_codes = stream[:coarse_count].reshape(coarse_shape)
        cursor = coarse_count
        detail_codes: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * n_levels
        for level in range(n_levels - 1, -1, -1):
            count = int(detail_mask(shapes[level]).sum())
            detail_codes[level] = stream[cursor : cursor + count]
            cursor += count
        if cursor != stream.size:
            raise CompressorError("mgard coefficient stream length mismatch")
        return self._reconstruct(coarse_codes, detail_codes, shapes, budgets)
