"""MGARD-like multilevel error-bounded compressor.

Mirrors the structure the paper attributes to MGARD: the field is
decomposed into **multilevel coefficients** on a dyadic grid hierarchy
(:mod:`repro.compressors.multigrid`, dimension-general: 2D planes and 3D
volumes share one code path), the coefficients are quantized level by
level, and the quantized stream is handed to a lossless backend.  Because
coarse levels summarise the entire field, the compressor "sees" global
structure in a way the block-local SZ and ZFP cannot — which is exactly
why the paper finds MGARD's compression ratio to be less sensitive to the
(local) correlation-range statistics.

The quantized level streams are entropy coded with the same
**bit-width-grouped** layout the ZFP-like container uses for sequency
planes (:func:`repro.compressors.transform.group_planes_by_width`): each
level's codes are zigzag-mapped, consecutive levels whose codes share a
bit width form one short-alphabet backend stream, and all-zero groups
cost no stream at all.  Fine-detail levels (near-zero codes for smooth
data) therefore no longer share a Huffman alphabet with the huge coarse
codes — the regrouping both shrinks the stream and removes the wide-
alphabet Huffman build that dominated the old compress path.

Error-budget argument
---------------------
Reconstruction proceeds coarse-to-fine; at every level the prolongation is
a convex (linear-interpolation) combination of the coarser level, so it
does not amplify errors, and adding the dequantized details contributes at
most that level's quantization error.  Splitting the absolute tolerance
``eb`` into per-level budgets that sum to ``eb`` therefore bounds the total
point-wise error by ``eb``.  The split favours finer levels (which carry
most coefficients) geometrically; the compressor verifies the bound on its
own reconstruction before returning.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

import numpy as np

from repro.compressors.base import CompressedField, Compressor, CompressorError, LosslessBackend
from repro.compressors.blocks import quantize_to_grid
from repro.compressors.multigrid import (
    decompose,
    detail_mask,
    max_levels,
    prolong,
)
from repro.compressors.transform import (
    group_planes_by_width,
    zigzag_decode,
    zigzag_encode,
)
from repro.encoding.varint import decode_varint, encode_varint
from repro.utils.validation import ensure_float_array, ensure_ndim

__all__ = ["MGARDCompressor"]

_MAGIC = b"MGR2"
_CODE_RADIUS = 1 << 40
#: Container flag values (leading varint after the magic): 0 plain, 1 raw,
#: 2 halo/context-coded (level streams may carry the table-free context
#: tag and need the tile halo's entropy context to decode).
_FLAG_RAW = 1
_FLAG_HALO = 2


class MGARDCompressor(Compressor):
    """MGARD-like multilevel error-bounded compressor (2D + 3D).

    Parameters
    ----------
    error_bound:
        Absolute error bound.
    levels:
        Number of coarsening steps; ``None`` uses as many as the field
        admits (down to a 4x4(x4) coarsest grid).
    backend:
        Lossless backend for the quantized coefficient stream.
    budget_ratio:
        Geometric ratio of the per-level error budgets: level ``l`` (finest
        = 0) receives a budget proportional to ``budget_ratio**l``.  The
        default weights the finest level most heavily, since its detail
        coefficients dominate the stream.
    """

    name = "mgard"
    supports_halo = True

    def __init__(
        self,
        error_bound: float = 1e-3,
        *,
        levels: int | None = None,
        backend: str = "huffman",
        budget_ratio: float = 0.5,
    ) -> None:
        super().__init__(error_bound)
        if levels is not None and levels < 1:
            raise ValueError("levels must be >= 1 (or None for automatic)")
        if not 0 < budget_ratio <= 1:
            raise ValueError("budget_ratio must be in (0, 1]")
        self.levels = levels
        self.backend = LosslessBackend(backend)
        self.budget_ratio = float(budget_ratio)

    # ------------------------------------------------------------------
    def _level_budgets(self, n_levels: int) -> np.ndarray:
        """Per-level absolute error budgets (finest first, last entry = coarse grid)."""

        weights = self.budget_ratio ** np.arange(n_levels + 1, dtype=np.float64)
        weights /= weights.sum()
        return self.error_bound * weights

    # ------------------------------------------------------------------
    def compress(
        self,
        field: np.ndarray,
        *,
        halo=None,
        collect_context: bool = False,
    ) -> CompressedField:
        """Compress a field; ``halo.context`` enables table-free streams.

        The multigrid hierarchy has no per-block prediction restart to fix
        (its dyadic grids align across power-of-two tile offsets), so like
        ZFP the halo contributes through its entropy context only: the
        level-group streams are coded against the reference neighbour's
        symbol statistics instead of bootstrapping tables per tile.
        """

        original = ensure_ndim(field, (2, 3), "field")
        original_dtype = np.asarray(field).dtype
        values = ensure_float_array(original, "field")
        if not np.all(np.isfinite(values)):
            raise CompressorError("mgard: field contains non-finite values")
        halo_context = halo.context if halo is not None else None
        if halo_context is not None and not halo_context:
            halo_context = None

        available = max_levels(values.shape)
        n_levels = available if self.levels is None else min(self.levels, available)
        if n_levels == 0:
            # Field too small for a hierarchy: store verbatim.
            return self._compress_raw(values, original_dtype)

        decomposition = decompose(values, n_levels)
        budgets = self._level_budgets(decomposition.n_levels)

        # Per-level grid quantization via the shared block-codec engine; any
        # level overflowing the integer grid routes the field to raw storage.
        detail_codes: List[np.ndarray] = []
        for level, detail in enumerate(decomposition.details):
            codes = quantize_to_grid(detail, 2.0 * budgets[level], max_code=_CODE_RADIUS)
            if codes is None:
                return self._compress_raw(values, original_dtype)
            detail_codes.append(codes)
        coarse_codes = quantize_to_grid(
            decomposition.coarse, 2.0 * budgets[-1], max_code=_CODE_RADIUS
        )
        if coarse_codes is None:
            return self._compress_raw(values, original_dtype)

        reconstruction = self._reconstruct(
            coarse_codes, detail_codes, decomposition.shapes, budgets
        )
        max_error = float(np.abs(reconstruction - values).max())
        if max_error > self.error_bound:
            # The additive budget argument makes this unreachable, but a raw
            # fallback keeps the bound a hard guarantee even in pathological
            # floating-point corner cases.
            return self._compress_raw(values, original_dtype)

        # ------------------------------------------------------------------
        payload = bytearray()
        payload.extend(_MAGIC)
        payload.extend(encode_varint(_FLAG_HALO if halo_context is not None else 0))
        payload.extend(encode_varint(values.ndim))
        for length in values.shape:
            payload.extend(encode_varint(length))
        payload.extend(struct.pack("<d", self.error_bound))
        payload.extend(struct.pack("<d", self.budget_ratio))
        payload.extend(encode_varint(decomposition.n_levels))

        # Level-major parts: coarse grid first, then details from coarsest
        # to finest — the coarse part is tiny and the fine details (mostly
        # near zero for smooth data) dominate.  Each part's codes are
        # zigzag-mapped; consecutive parts of equal bit width form one
        # backend stream with a short alphabet (the multilevel analogue of
        # ZFP's sequency-plane grouping).
        parts = [zigzag_encode(coarse_codes.ravel())]
        for detail in reversed(detail_codes):
            parts.append(zigzag_encode(detail.ravel()))
        widths = np.array(
            [
                int(part.max()).bit_length() if part.size and part.max() > 0 else 0
                for part in parts
            ],
            dtype=np.int64,
        )
        groups = group_planes_by_width(widths)
        payload.extend(encode_varint(len(groups)))
        context_streams = []
        for start, end, width in groups:
            payload.extend(encode_varint(end - start))
            payload.extend(encode_varint(width))
            if width > 0:
                stream = np.concatenate(parts[start:end])
                context_streams.append(stream)
                group_blob = self.backend.encode_symbols(
                    stream, context=halo_context
                )
                payload.extend(encode_varint(len(group_blob)))
                payload.extend(group_blob)

        compressed = CompressedField(
            data=bytes(payload),
            original_shape=values.shape,
            original_dtype=original_dtype,
            compressor=self.name,
            error_bound=self.error_bound,
            reconstruction=reconstruction,
            extras={
                "n_levels": float(decomposition.n_levels),
                "max_error": max_error,
                "level_stream_groups": float(len(groups)),
                "halo_coded": float(halo_context is not None),
            },
        )
        if collect_context:
            from repro.encoding.context import EntropyContext

            compressed.entropy_context = EntropyContext.from_streams(context_streams)
        self.check_error_bound(values, reconstruction)
        return compressed

    # ------------------------------------------------------------------
    def _reconstruct(
        self,
        coarse_codes: np.ndarray,
        detail_codes: List[np.ndarray],
        shapes: List[Tuple[int, ...]],
        budgets: np.ndarray,
    ) -> np.ndarray:
        current = coarse_codes.astype(np.float64) * (2.0 * budgets[-1])
        for level in range(len(detail_codes) - 1, -1, -1):
            fine_shape = shapes[level]
            predicted = prolong(current, fine_shape)
            mask = detail_mask(fine_shape)
            fine = predicted.copy()
            fine[mask] += detail_codes[level].astype(np.float64) * (2.0 * budgets[level])
            fine[(slice(None, None, 2),) * len(fine_shape)] = current
            current = fine
        return current

    def _compress_raw(self, values: np.ndarray, original_dtype: np.dtype) -> CompressedField:
        payload = bytearray()
        payload.extend(_MAGIC)
        payload.extend(encode_varint(1))
        payload.extend(encode_varint(values.ndim))
        for length in values.shape:
            payload.extend(encode_varint(length))
        payload.extend(struct.pack("<d", self.error_bound))
        payload.extend(values.astype("<f8").tobytes())
        return CompressedField(
            data=bytes(payload),
            original_shape=values.shape,
            original_dtype=original_dtype,
            compressor=self.name,
            error_bound=self.error_bound,
            reconstruction=values.copy(),
            extras={"raw_fallback": 1.0},
        )

    # ------------------------------------------------------------------
    def decompress(self, compressed: CompressedField, *, halo=None) -> np.ndarray:
        return self._decode(compressed, halo, want_context=False)[0]

    def decompress_with_context(self, compressed: CompressedField, halo=None):
        return self._decode(compressed, halo, want_context=True)

    def _decode(self, compressed: CompressedField, halo, want_context: bool = False):
        blob = compressed.data
        if blob[:4] != _MAGIC:
            raise CompressorError("not an MGARD-like container")
        pos = 4
        flag, pos = decode_varint(blob, pos)
        halo_context = None
        if flag == _FLAG_HALO:
            if halo is None or halo.context is None:
                raise CompressorError(
                    "mgard: halo-coded container requires the tile halo's "
                    "entropy context to decode"
                )
            halo_context = halo.context
        elif flag not in (0, _FLAG_RAW):
            raise CompressorError(f"mgard: unknown container flag {flag}")
        ndim, pos = decode_varint(blob, pos)
        if ndim not in (2, 3):
            raise CompressorError(f"mgard: unsupported dimensionality {ndim}")
        dims = []
        for _ in range(ndim):
            length, pos = decode_varint(blob, pos)
            dims.append(length)
        original_shape = tuple(dims)
        if flag == _FLAG_RAW:
            pos += 8
            count = int(np.prod(original_shape))
            values = np.frombuffer(blob, dtype="<f8", count=count, offset=pos)
            return values.reshape(original_shape).astype(np.float64), None

        (error_bound,) = struct.unpack_from("<d", blob, pos)
        pos += 8
        (budget_ratio,) = struct.unpack_from("<d", blob, pos)
        pos += 8
        n_levels, pos = decode_varint(blob, pos)

        # Rebuild the level shapes from the stored field shape.
        shapes: List[Tuple[int, ...]] = [original_shape]
        for _ in range(n_levels):
            shapes.append(tuple((d + 1) // 2 for d in shapes[-1]))

        # Part sizes in stream order: coarse grid, then details from
        # coarsest to finest.
        part_sizes = [int(np.prod(shapes[-1]))]
        for level in range(n_levels - 1, -1, -1):
            part_sizes.append(int(detail_mask(shapes[level]).sum()))

        n_parts = n_levels + 1
        n_groups, pos = decode_varint(blob, pos)
        parts: List[np.ndarray] = []
        context_streams: List[np.ndarray] = []
        for _ in range(n_groups):
            group_parts, pos = decode_varint(blob, pos)
            width, pos = decode_varint(blob, pos)
            if len(parts) + group_parts > n_parts:
                raise CompressorError("mgard: level groups exceed the level count")
            sizes = part_sizes[len(parts) : len(parts) + group_parts]
            if width == 0:
                parts.extend(np.zeros(size, dtype=np.int64) for size in sizes)
                continue
            group_len, pos = decode_varint(blob, pos)
            stream = self.backend.decode_symbols(
                blob[pos : pos + group_len], context=halo_context
            )
            context_streams.append(stream)
            pos += group_len
            if stream.size != sum(sizes):
                raise CompressorError("mgard: level group length mismatch")
            offsets = np.cumsum([0] + sizes)
            parts.extend(
                zigzag_decode(stream[offsets[k] : offsets[k + 1]])
                for k in range(group_parts)
            )
        if len(parts) != n_parts:
            raise CompressorError("mgard: level groups do not cover all levels")

        weights = budget_ratio ** np.arange(n_levels + 1, dtype=np.float64)
        weights /= weights.sum()
        budgets = error_bound * weights

        coarse_codes = parts[0].reshape(shapes[-1])
        detail_codes: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * n_levels
        for k, level in enumerate(range(n_levels - 1, -1, -1)):
            detail_codes[level] = parts[1 + k]
        values = self._reconstruct(coarse_codes, detail_codes, shapes, budgets)
        context = None
        if want_context:
            from repro.encoding.context import EntropyContext

            context = EntropyContext.from_streams(context_streams)
        return values, context
