"""Shared NumPy-vectorized, dimension-general block-codec engine.

Every block-structured compressor in this package (the SZ-like predictor
pipeline, the hyperplane regression predictor, the shared linear quantizer,
and the MGARD-like level quantizer) is built on the primitives in this
module.  The engine's contract is that **no stage loops over blocks or
elements in Python**: fields are partitioned into a ``(*n_blocks, *block)``
block tensor once — ``(nbi, nbj, bs, bs)`` for a 2D field,
``(nbi, nbj, nbk, bs, bs, bs)`` for a 3D volume — and every subsequent
step — prediction, quantization, mode selection, unpredictable-value
routing — is a whole-tensor array operation.

Layer map
---------

* **Partition / merge** — :func:`partition_field` / :func:`merge_field`
  (edge-padded block views and the inverse crop).
* **Prediction** — :func:`lorenzo_residuals` / :func:`lorenzo_reconstruct`
  (first-order N-d Lorenzo in integer-code space over all blocks at once)
  and the hyperplane regression family (:func:`fit_block_planes`,
  :func:`plane_predictions`, coefficient quantization) — a plane
  ``beta0 + beta_i*i + beta_j*j`` in 2D, the trilinear-regression
  hyperplane ``beta0 + beta_i*i + beta_j*j + beta_k*k`` in 3D.
* **Quantization** — :func:`quantize_to_grid` (single ``np.rint`` pass onto
  the ``2*eb`` grid with overflow detection) and :func:`linear_quantize`
  (residual quantization with batched unpredictable-value handling).
* **Block codec** — :class:`BlockCodec` composes the above into the
  encode/decode pipeline shared by the SZ-like compressor: pre-quantize,
  predict with every enabled predictor, select the cheaper mode per block,
  and split out-of-radius residuals into an exact side channel.

The container/serialisation layer stays with the individual compressors;
this module deals only in arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.obs.trace import span as obs_span
from repro.utils.blocking import block_view, pad_to_multiple, reassemble_blocks
from repro.utils.validation import ensure_ndim, ensure_positive

__all__ = [
    "DEFAULT_CODE_RADIUS",
    "MODE_LORENZO",
    "MODE_REGRESSION",
    "partition_field",
    "merge_field",
    "lorenzo_residuals",
    "lorenzo_reconstruct",
    "halo_lorenzo_correction",
    "plane_design_matrix",
    "fit_block_planes",
    "coefficient_precisions",
    "quantize_plane_coefficients",
    "dequantize_plane_coefficients",
    "plane_predictions",
    "quantize_to_grid",
    "linear_quantize",
    "select_block_modes",
    "split_unpredictable",
    "merge_unpredictable",
    "BlockEncoding",
    "BlockCodec",
]

#: Default maximum |code|; matches SZ's default of 2^16 quantization intervals
#: (radius 2^15) — beyond that a value is declared unpredictable.
DEFAULT_CODE_RADIUS = 1 << 15

#: Per-block predictor modes (stored as one bit per block in the containers).
MODE_LORENZO = 0
MODE_REGRESSION = 1

#: Cost-model overhead charged to a regression block for storing its plane
#: coefficients per coefficient (~16 bits each; a 2D plane has 3, a 3D
#: hyperplane 4).
REGRESSION_OVERHEAD_BITS_PER_COEFF = 16.0

#: Safety margin for the pre-quantization integer grid (int64).
MAX_SAFE_CODE = float(2**62)


def _infer_block_ndim(blocks: np.ndarray, block_ndim: Optional[int]) -> int:
    """Number of trailing block axes of a ``(*batch, *block)`` tensor.

    When ``block_ndim`` is not given the tensor is assumed to be a full
    ``(*n_blocks, *block)`` partition, i.e. half its axes are block axes.
    """

    if block_ndim is None:
        if blocks.ndim % 2 or blocks.ndim < 4:
            raise ValueError(
                f"expected a (*n_blocks, *block) tensor, got shape {blocks.shape}"
            )
        block_ndim = blocks.ndim // 2
    if not 1 <= block_ndim <= blocks.ndim:
        raise ValueError(
            f"block_ndim={block_ndim} invalid for tensor of shape {blocks.shape}"
        )
    return int(block_ndim)


# ----------------------------------------------------------------------
# partition / merge
# ----------------------------------------------------------------------
def partition_field(
    field: np.ndarray, block_size: int, *, mode: str = "edge"
) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Pad an N-d field and view it as a ``(*n_blocks, *block)`` block tensor.

    Returns ``(blocks, original_shape)``; ``blocks`` is a strided view of
    the padded array (no copy) and ``original_shape`` is what
    :func:`merge_field` needs to crop the reconstruction.
    """

    padded, original_shape = pad_to_multiple(field, block_size, mode=mode)
    return block_view(padded, block_size), original_shape


def merge_field(blocks: np.ndarray, original_shape: Tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`partition_field`: reassemble blocks and crop."""

    return reassemble_blocks(blocks, original_shape)


# ----------------------------------------------------------------------
# Lorenzo prediction (integer-code space, all blocks at once)
# ----------------------------------------------------------------------
def lorenzo_residuals(
    code_blocks: np.ndarray, *, block_ndim: Optional[int] = None
) -> np.ndarray:
    """First-order N-d Lorenzo differences within each block.

    ``code_blocks`` has shape ``(*batch, *block)`` (integer quantization
    codes); the last ``block_ndim`` axes are the block axes.  The N-d
    Lorenzo residual is the composition of the backward difference along
    every block axis — the inclusion/exclusion corner predictor (for 3D:
    the seven-neighbour cube-corner prediction).  Out-of-block neighbours
    are treated as zero, so boundary faces fall back to lower-dimensional
    differences and the corner stores the code itself.
    """

    codes = np.asarray(code_blocks, dtype=np.int64)
    ndim = _infer_block_ndim(codes, block_ndim)
    residuals = codes
    for axis in range(codes.ndim - ndim, codes.ndim):
        head = [slice(None)] * codes.ndim
        tail = [slice(None)] * codes.ndim
        head[axis] = slice(1, None)
        tail[axis] = slice(None, -1)
        diffed = residuals.copy()
        diffed[tuple(head)] -= residuals[tuple(tail)]
        residuals = diffed
    return residuals


def lorenzo_reconstruct(
    residual_blocks: np.ndarray, *, block_ndim: Optional[int] = None
) -> np.ndarray:
    """Invert :func:`lorenzo_residuals` via cumulative sums per block axis."""

    residuals = np.asarray(residual_blocks, dtype=np.int64)
    ndim = _infer_block_ndim(residuals, block_ndim)
    codes = residuals
    for axis in range(residuals.ndim - ndim, residuals.ndim):
        codes = np.cumsum(codes, axis=axis)
    return codes


def _blocked_face(face: np.ndarray, block_size: int) -> np.ndarray:
    """View a (d-1)-dim face as ``(*n_blocks_face, *block_face)``.

    ``face`` must already be padded to multiples of ``block_size`` along
    every axis (1D and 2D faces — the low faces of 2D/3D tiles).
    """

    face = np.asarray(face)
    counts = tuple(length // block_size for length in face.shape)
    interleaved = face.reshape(
        tuple(x for count in counts for x in (count, block_size))
    )
    order = tuple(range(0, 2 * face.ndim, 2)) + tuple(range(1, 2 * face.ndim, 2))
    return interleaved.transpose(order)


def halo_lorenzo_correction(
    halo_code_planes: Sequence[Optional[np.ndarray]],
    n_blocks: Tuple[int, ...],
    block_size: int,
) -> np.ndarray:
    """Residual-space correction that makes Lorenzo see across tile seams.

    ``halo_code_planes[a]`` holds the *quantization codes* of the one
    reconstructed neighbour plane adjacent to the tile's low face along
    axis ``a`` (shape: the padded tile with axis ``a`` dropped), or
    ``None``.  The standard per-block Lorenzo treats out-of-block
    neighbours as zero; with a halo, the first plane of the tile-boundary
    blocks should difference against the neighbour plane instead.

    By linearity of the differencing cascade, the halo-aware residual is
    ``lorenzo_residuals(codes) + D(shell)|core`` where the *shell tensor*
    embeds the halo codes at the ``-1`` positions of an extended
    ``(bs+1)^d`` block (zero for interior block faces, replicated from the
    lowest-axis face where two halo faces meet — the one-plane halo
    carries no edge/corner lines), and ``D`` is the same per-axis
    difference cascade.  The returned array has shape
    ``(*n_blocks, *(bs,)*d)`` and is zero except on the first planes of
    tile-boundary blocks, so halo-free axes decode bit-identically.
    """

    ndim = len(n_blocks)
    bs = int(block_size)
    haloed = [
        axis
        for axis in range(ndim)
        if axis < len(halo_code_planes) and halo_code_planes[axis] is not None
    ]
    shell = np.zeros(tuple(n_blocks) + (bs + 1,) * ndim, dtype=np.int64)
    blocked_faces: Dict[int, np.ndarray] = {
        axis: _blocked_face(halo_code_planes[axis], bs) for axis in haloed
    }

    # Every shell position with zero-set Z (extended coordinate 0 on the
    # axes in Z, core elsewhere) takes the face of min(Z), replicated to
    # position 0 along the other axes of Z.
    for size in range(1, len(haloed) + 1):
        for subset in combinations(haloed, size):
            lead = subset[0]
            face = blocked_faces[lead]
            # Index the face at batch/block position 0 along subset[1:].
            # Face axes: batch dims = tile axes without `lead`, then block
            # dims likewise.
            other_axes = [a for a in range(ndim) if a != lead]
            batch_idx = [slice(None)] * (ndim - 1)
            block_idx = [slice(None)] * (ndim - 1)
            for axis in subset[1:]:
                position = other_axes.index(axis)
                batch_idx[position] = 0
                block_idx[position] = 0
            source = face[tuple(batch_idx) + tuple(block_idx)]
            target_batch = tuple(
                0 if axis in subset else slice(None) for axis in range(ndim)
            )
            target_block = tuple(
                0 if axis in subset else slice(1, None) for axis in range(ndim)
            )
            shell[target_batch + target_block] = source

    diffed = lorenzo_residuals(shell, block_ndim=ndim)
    core = (slice(None),) * ndim + (slice(1, None),) * ndim
    return diffed[core]


# ----------------------------------------------------------------------
# hyperplane regression prediction (SZ's second predictor)
# ----------------------------------------------------------------------
def plane_design_matrix(block_size: int, ndim: int = 2) -> np.ndarray:
    """Design matrix ``[1, i, j, ...]`` for every cell of an N-d block."""

    ensure_positive(block_size, "block_size")
    ensure_positive(ndim, "ndim")
    coords = np.indices((block_size,) * ndim).reshape(ndim, -1)
    columns = [np.ones(block_size**ndim)]
    columns.extend(coords.astype(np.float64))
    return np.column_stack(columns)


def fit_block_planes(
    blocks: np.ndarray, *, block_ndim: Optional[int] = None
) -> np.ndarray:
    """Least-squares hyperplane coefficients for every block.

    ``blocks`` has shape ``(*batch, *block)``; the result has shape
    ``(*batch, 1 + block_ndim)`` holding ``(beta0, beta_i, beta_j, ...)``
    per block.  The design matrix is identical for every block, so one
    precomputed pseudo-inverse applied with a single ``einsum`` fits them
    all.
    """

    blocks = np.asarray(blocks)
    ndim = _infer_block_ndim(blocks, block_ndim)
    edges = blocks.shape[blocks.ndim - ndim :]
    if len(set(edges)) != 1:
        raise ValueError("blocks must be square")
    bs = edges[0]
    design = plane_design_matrix(bs, ndim)
    pseudo_inverse = np.linalg.pinv(design)  # (1 + ndim, bs**ndim)
    flat = blocks.reshape(blocks.shape[: blocks.ndim - ndim] + (bs**ndim,))
    return np.einsum("kp,...p->...k", pseudo_inverse, flat.astype(np.float64))


def coefficient_precisions(
    error_bound: float, block_size: int, ndim: int = 2
) -> np.ndarray:
    """Quantization step for (intercept, slope...) hyperplane coefficients.

    Following SZ's choice, the intercept is stored to within the error
    bound itself, while slope coefficients are stored to within
    ``error_bound / block_size`` so the accumulated prediction error across
    a block stays of the order of the error bound.
    """

    ensure_positive(error_bound, "error_bound")
    ensure_positive(block_size, "block_size")
    ensure_positive(ndim, "ndim")
    return np.array(
        [error_bound] + [error_bound / block_size] * ndim, dtype=np.float64
    )


def quantize_plane_coefficients(
    coefficients: np.ndarray, error_bound: float, block_size: int, ndim: int = 2
) -> np.ndarray:
    """Quantize hyperplane coefficients to integer codes (per-coefficient precision)."""

    precisions = coefficient_precisions(error_bound, block_size, ndim)
    coeffs = np.asarray(coefficients, dtype=np.float64)
    with np.errstate(invalid="ignore", over="ignore"):
        ratios = np.rint(coeffs / precisions)
    # Plane fits of a non-finite field yield non-finite coefficients; mask
    # them before the int64 cast (which wraps silently) so the affected
    # blocks carry a zero plane and lose in mode selection instead of
    # corrupting the container.
    return np.where(np.isfinite(ratios), ratios, 0.0).astype(np.int64)


def dequantize_plane_coefficients(
    codes: np.ndarray, error_bound: float, block_size: int, ndim: int = 2
) -> np.ndarray:
    """Inverse of :func:`quantize_plane_coefficients`."""

    precisions = coefficient_precisions(error_bound, block_size, ndim)
    return np.asarray(codes, dtype=np.float64) * precisions


def plane_predictions(coefficients: np.ndarray, block_size: int) -> np.ndarray:
    """Evaluate hyperplane predictions for every block.

    ``coefficients`` has shape ``(*batch, 1 + ndim)``; the result has shape
    ``(*batch, bs, ..., bs)`` with ``ndim`` trailing block axes.
    """

    coeffs = np.asarray(coefficients, dtype=np.float64)
    if coeffs.ndim < 1 or coeffs.shape[-1] < 2:
        raise ValueError(
            f"expected (*batch, 1 + ndim) coefficients, got {coeffs.shape}"
        )
    ndim = coeffs.shape[-1] - 1
    coords = np.indices((block_size,) * ndim).astype(np.float64)
    batch = coeffs.shape[:-1]
    expand = (...,) + (None,) * ndim
    predictions = np.broadcast_to(
        coeffs[..., 0][expand], batch + (block_size,) * ndim
    ).copy()
    for axis in range(ndim):
        predictions += coeffs[..., axis + 1][expand] * coords[axis]
    return predictions


# ----------------------------------------------------------------------
# quantization
# ----------------------------------------------------------------------
def quantize_to_grid(
    values: np.ndarray, step: float, *, max_code: float = MAX_SAFE_CODE
) -> Optional[np.ndarray]:
    """Round a float array onto the ``step`` grid in one ``np.rint`` pass.

    Returns int64 codes such that ``codes * step`` reconstructs each value
    to within ``step / 2``, or ``None`` when any scaled value is non-finite
    or too large for the integer grid (callers fall back to raw storage).
    """

    # The ratio legitimately overflows to inf when the data magnitude dwarfs
    # the step (extreme value / tiny bound); the isfinite check below routes
    # exactly those cases to the caller's raw fallback.
    with np.errstate(over="ignore"):
        scaled = np.asarray(values, dtype=np.float64) / step
    if not np.all(np.isfinite(scaled)):
        return None
    codes = np.rint(scaled)
    if float(np.abs(codes).max(initial=0.0)) > max_code:
        return None
    return codes.astype(np.int64)


def linear_quantize(
    values: np.ndarray,
    predictions: np.ndarray,
    error_bound: float,
    *,
    code_radius: int = DEFAULT_CODE_RADIUS,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quantize ``values - predictions`` with bin width ``2 * error_bound``.

    One vectorized pass: round residuals onto the grid, mark entries whose
    code magnitude exceeds ``code_radius`` (or whose reconstruction would
    violate the bound due to floating-point corner cases, or whose code is
    non-finite) as *unpredictable*, and reconstruct predictable entries at
    ``prediction + step * code`` while unpredictable ones keep the exact
    value.  Returns ``(codes, unpredictable_mask, reconstruction)``.
    """

    ensure_positive(error_bound, "error_bound")
    ensure_positive(code_radius, "code_radius")
    values = np.asarray(values, dtype=np.float64)
    predictions = np.asarray(predictions, dtype=np.float64)
    if values.shape != predictions.shape:
        raise ValueError(
            f"values shape {values.shape} != predictions shape {predictions.shape}"
        )

    step = 2.0 * error_bound
    with np.errstate(invalid="ignore", over="ignore"):
        residuals = values - predictions
        codes = np.rint(residuals / step)
        out_of_range = np.abs(codes) > code_radius
        reconstruction = predictions + step * codes
        violates = np.abs(reconstruction - values) > error_bound
    unpredictable = out_of_range | violates | ~np.isfinite(codes)

    codes = np.where(unpredictable, 0, codes).astype(np.int64)
    reconstruction = np.where(unpredictable, values, predictions + step * codes)
    return codes, unpredictable, reconstruction


# ----------------------------------------------------------------------
# per-block mode selection and the unpredictable side channel
# ----------------------------------------------------------------------
def select_block_modes(
    candidates: Dict[str, np.ndarray],
    *,
    block_ndim: Optional[int] = None,
    regression_overhead_bits: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pick the cheaper predictor per block.

    ``candidates`` maps predictor name (``"lorenzo"`` / ``"regression"``)
    to its ``(*n_blocks, *block)`` residual-code tensor.  The coding cost
    proxy is the total number of significant bits of the residual codes (a
    cheap stand-in for the Huffman-coded size), with a fixed overhead added
    for the coefficients a regression block must store.  Returns
    ``(modes, residuals)`` with ``modes`` in {MODE_LORENZO, MODE_REGRESSION}.
    """

    names = list(candidates)
    first = candidates[names[0]]
    ndim = _infer_block_ndim(np.asarray(first), block_ndim)
    lead = first.ndim - ndim
    if len(names) == 1:
        residuals = candidates[names[0]]
        mode = MODE_LORENZO if names[0] == "lorenzo" else MODE_REGRESSION
        return np.full(residuals.shape[:lead], mode, dtype=np.int64), residuals

    if regression_overhead_bits is None:
        regression_overhead_bits = REGRESSION_OVERHEAD_BITS_PER_COEFF * (1 + ndim)
    block_axes = tuple(range(lead, first.ndim))
    lorenzo = candidates["lorenzo"]
    regression = candidates["regression"]
    cost_lorenzo = np.log2(np.abs(lorenzo) + 1.0).sum(axis=block_axes)
    cost_regression = np.log2(np.abs(regression) + 1.0).sum(axis=block_axes)
    cost_regression = cost_regression + regression_overhead_bits
    modes = np.where(cost_regression < cost_lorenzo, MODE_REGRESSION, MODE_LORENZO)
    expand = (...,) + (None,) * ndim
    residuals = np.where((modes == MODE_REGRESSION)[expand], regression, lorenzo)
    return modes.astype(np.int64), residuals


def split_unpredictable(
    residuals: np.ndarray, code_radius: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Split residual codes into bounded symbols and an exact side channel.

    Codes with ``|code| <= code_radius`` become the non-negative symbols
    ``code + code_radius + 1``; larger codes are replaced by the reserved
    symbol 0 and appended (in scan order) to the outlier array.  Returns
    ``(symbols, outliers)`` with ``symbols`` shaped like ``residuals``.
    """

    residuals = np.asarray(residuals, dtype=np.int64)
    outlier_mask = np.abs(residuals) > code_radius
    outliers = residuals[outlier_mask]
    symbols = np.where(outlier_mask, 0, residuals + code_radius + 1)
    return symbols, outliers


def merge_unpredictable(
    symbols: np.ndarray, outliers: np.ndarray, code_radius: int
) -> np.ndarray:
    """Inverse of :func:`split_unpredictable` (flat or shaped symbols)."""

    symbols = np.asarray(symbols, dtype=np.int64)
    residuals = symbols - (code_radius + 1)
    flat = residuals.ravel()
    flat[np.flatnonzero(symbols.ravel() == 0)] = outliers
    return residuals


# ----------------------------------------------------------------------
# the composed block codec (SZ-style predict/quantize/select pipeline)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BlockEncoding:
    """Array-level output of :meth:`BlockCodec.encode`.

    The container layer serializes these fields; ``reconstruction`` is the
    decoder-identical reconstruction computed as an encode by-product.
    """

    original_shape: Tuple[int, ...]
    n_blocks: Tuple[int, ...]  # blocks per dimension
    modes: np.ndarray  # (*n_blocks,) in {MODE_LORENZO, MODE_REGRESSION}
    symbols: np.ndarray  # (prod(n_blocks), bs**ndim) non-negative, 0 = outlier
    outliers: np.ndarray  # exact residual codes beyond the radius, scan order
    coeff_codes: Optional[np.ndarray]  # (n_regression_blocks, 1 + ndim) or None
    reconstruction: np.ndarray

    @property
    def ndim(self) -> int:
        return len(self.n_blocks)

    @property
    def nbi(self) -> int:
        return self.n_blocks[0]

    @property
    def nbj(self) -> int:
        return self.n_blocks[1]

    @property
    def unpredictable_fraction(self) -> float:
        if self.symbols.size == 0:
            return 0.0
        return float((self.symbols == 0).mean())

    @property
    def regression_fraction(self) -> float:
        if self.modes.size == 0:
            return 0.0
        return float((self.modes == MODE_REGRESSION).mean())


class BlockCodec:
    """SZ-style block predict/quantize/select engine (arrays in, arrays out).

    The reference SZ predicts from *reconstructed* neighbour values, which
    serialises the scan.  This engine pre-quantizes the field onto the
    ``2*error_bound`` grid (so every reconstructed value equals
    ``2*eb*q`` exactly) and predicts in integer-code space.  Prediction
    from codes is then identical to prediction from reconstructed values,
    the point-wise error bound holds by construction, and both predictors
    reduce to pure NumPy operations over all blocks at once.

    The codec is dimension-general: 2D fields use 2D Lorenzo + plane
    regression, 3D volumes use the cube-corner Lorenzo predictor + the
    trilinear regression hyperplane, through the same code path.
    """

    def __init__(
        self,
        error_bound: float,
        *,
        block_size: int = 16,
        predictors: Tuple[str, ...] = ("lorenzo", "regression"),
        code_radius: int = DEFAULT_CODE_RADIUS,
    ) -> None:
        ensure_positive(error_bound, "error_bound")
        if block_size < 2:
            raise ValueError("block_size must be >= 2")
        if not predictors:
            raise ValueError("at least one predictor must be enabled")
        for predictor in predictors:
            if predictor not in ("lorenzo", "regression"):
                raise ValueError(f"unknown predictor {predictor!r}")
        if code_radius < 1:
            raise ValueError("code_radius must be >= 1")
        self.error_bound = float(error_bound)
        self.block_size = int(block_size)
        self.predictors = tuple(predictors)
        self.code_radius = int(code_radius)

    @property
    def step(self) -> float:
        return 2.0 * self.error_bound

    # ------------------------------------------------------------------
    def _halo_code_planes(
        self,
        halo_planes: Optional[Sequence[Optional[np.ndarray]]],
        original_shape: Tuple[int, ...],
        padded_shape: Tuple[int, ...],
    ) -> Optional[list]:
        """Quantize neighbour halo planes onto the code grid (or ``None``).

        Planes come in at the tile's *original* cross-section and are
        edge-padded to the padded tile; a plane whose codes overflow the
        integer grid is dropped.  Every step is a pure function of the
        plane values, so encoder and decoder (which receive bit-identical
        reconstructed planes) derive bit-identical code planes.
        """

        if halo_planes is None:
            return None
        ndim = len(original_shape)
        out: list = [None] * ndim
        for axis in range(min(ndim, len(halo_planes))):
            plane = halo_planes[axis]
            if plane is None:
                continue
            expected = tuple(
                s for i, s in enumerate(original_shape) if i != axis
            )
            plane = np.asarray(plane, dtype=np.float64)
            if plane.shape != expected:
                raise ValueError(
                    f"halo plane for axis {axis} has shape {plane.shape}, "
                    f"expected {expected}"
                )
            target = tuple(s for i, s in enumerate(padded_shape) if i != axis)
            pads = tuple((0, t - s) for s, t in zip(plane.shape, target))
            if any(p[1] for p in pads):
                plane = np.pad(plane, pads, mode="edge")
            codes = quantize_to_grid(plane, self.step)
            if codes is None:
                continue
            out[axis] = codes
        return out if any(p is not None for p in out) else None

    # ------------------------------------------------------------------
    def encode(
        self,
        values: np.ndarray,
        halo_planes: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> Optional[BlockEncoding]:
        """Encode a 2D/3D float field; ``None`` when the integer grid overflows.

        ``halo_planes`` optionally supplies, per axis, the one
        reconstructed neighbour plane adjacent to the tile's low face;
        the Lorenzo candidate then predicts across the seam (see
        :func:`halo_lorenzo_correction`).  ``decode`` must receive the
        same planes.
        """

        values = ensure_ndim(values, (2, 3), "values")
        ndim = values.ndim
        with obs_span("codec.encode.quantize", "codec"):
            padded, original_shape = pad_to_multiple(values, self.block_size)
            q = quantize_to_grid(padded, self.step)
        if q is None:
            return None

        code_blocks = block_view(q, self.block_size)
        value_blocks = block_view(padded, self.block_size)
        n_blocks = code_blocks.shape[:ndim]
        bs = self.block_size

        candidates: Dict[str, np.ndarray] = {}
        reg_coeff_codes = None
        with obs_span("codec.encode.predict", "codec"):
            if "lorenzo" in self.predictors:
                lorenzo = lorenzo_residuals(code_blocks, block_ndim=ndim)
                halo_codes = self._halo_code_planes(
                    halo_planes, original_shape, padded.shape
                )
                if halo_codes is not None:
                    lorenzo = lorenzo + halo_lorenzo_correction(
                        halo_codes, n_blocks, bs
                    )
                candidates["lorenzo"] = lorenzo
            if "regression" in self.predictors:
                coefficients = fit_block_planes(value_blocks, block_ndim=ndim)
                reg_coeff_codes = quantize_plane_coefficients(
                    coefficients, self.error_bound, bs, ndim
                )
                quantized_coeffs = dequantize_plane_coefficients(
                    reg_coeff_codes, self.error_bound, bs, ndim
                )
                predictions = plane_predictions(quantized_coeffs, bs)
                # repro-lint: disable=unsafe-cast -- predictions are dequantized int64 codes times validated positive precisions; finite by construction
                predicted_codes = np.rint(predictions / self.step).astype(np.int64)
                candidates["regression"] = code_blocks - predicted_codes

        with obs_span("codec.encode.backend", "codec"):
            modes, residual_blocks = select_block_modes(candidates, block_ndim=ndim)
            flat = residual_blocks.reshape(int(np.prod(n_blocks)), bs**ndim)
            symbols, outliers = split_unpredictable(flat, self.code_radius)

        coeff_codes = None
        if reg_coeff_codes is not None:
            coeff_codes = reg_coeff_codes[modes == MODE_REGRESSION]

        crop = tuple(slice(0, s) for s in original_shape)
        reconstruction = (q.astype(np.float64) * self.step)[crop]
        return BlockEncoding(
            original_shape=original_shape,
            n_blocks=n_blocks,
            modes=modes,
            symbols=symbols,
            outliers=outliers,
            coeff_codes=coeff_codes,
            reconstruction=reconstruction,
        )

    # ------------------------------------------------------------------
    def decode(
        self,
        modes: np.ndarray,
        symbols: np.ndarray,
        outliers: np.ndarray,
        coeff_codes: Optional[np.ndarray],
        original_shape: Tuple[int, ...],
        halo_planes: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> np.ndarray:
        """Reconstruct the field from the arrays produced by :meth:`encode`.

        ``halo_planes`` must be the same neighbour planes the encoder saw
        (bit-identical reconstructed data) whenever the tile was encoded
        with a halo.
        """

        bs = self.block_size
        ndim = len(original_shape)
        n_blocks = modes.shape
        if len(n_blocks) != ndim:
            raise ValueError(
                f"modes shape {modes.shape} does not match a {ndim}D field"
            )
        with obs_span("codec.decode.backend", "codec"):
            residuals = merge_unpredictable(symbols, outliers, self.code_radius)
            residual_blocks = residuals.reshape(n_blocks + (bs,) * ndim)

        with obs_span("codec.decode.predict", "codec"):
            code_blocks = np.empty_like(residual_blocks)
            lorenzo_mask = modes == MODE_LORENZO
            if lorenzo_mask.any():
                lorenzo_residual_blocks = residual_blocks
                padded_shape = tuple(n * bs for n in n_blocks)
                halo_codes = self._halo_code_planes(
                    halo_planes, original_shape, padded_shape
                )
                if halo_codes is not None:
                    lorenzo_residual_blocks = residual_blocks - halo_lorenzo_correction(
                        halo_codes, n_blocks, bs
                    )
                code_blocks[lorenzo_mask] = lorenzo_reconstruct(
                    lorenzo_residual_blocks[lorenzo_mask], block_ndim=ndim
                )
            regression_mask = modes == MODE_REGRESSION
            if regression_mask.any():
                if coeff_codes is None:
                    raise ValueError("regression blocks present but no coefficients given")
                quantized_coeffs = dequantize_plane_coefficients(
                    coeff_codes, self.error_bound, bs, ndim
                ).reshape(-1, 1 + ndim)
                predictions = plane_predictions(quantized_coeffs, bs)
                # repro-lint: disable=unsafe-cast -- predictions are dequantized int64 codes times validated positive precisions; finite by construction
                predicted_codes = np.rint(predictions / self.step).astype(np.int64)
                code_blocks[regression_mask] = (
                    residual_blocks[regression_mask] + predicted_codes
                )

        with obs_span("codec.decode.dequantize", "codec"):
            q = merge_field(code_blocks, tuple(n * bs for n in n_blocks))
            field = q.astype(np.float64) * self.step
            return field[tuple(slice(0, s) for s in original_shape)]
