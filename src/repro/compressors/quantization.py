"""Linear (uniform scalar) quantization against an absolute error bound.

SZ's core mechanism: the difference between a value and its prediction is
mapped to an integer *quantization code* with bin width ``2 * error_bound``;
reconstructing at ``prediction + 2 * error_bound * code`` guarantees the
point-wise absolute error bound.  Codes outside a configurable radius mark
the value as *unpredictable*: it is stored exactly (bit-for-bit) in a side
channel instead, exactly as the real SZ does.

The vectorized single-pass implementation lives in the shared block-codec
engine (:func:`repro.compressors.blocks.linear_quantize`); this module
wraps it in the :class:`QuantizationResult` record used by the SZ-like and
MGARD-like compressors and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compressors.blocks import DEFAULT_CODE_RADIUS, linear_quantize
from repro.utils.validation import ensure_positive

__all__ = ["QuantizationResult", "quantize_residuals", "dequantize_codes", "DEFAULT_CODE_RADIUS"]


@dataclass(frozen=True)
class QuantizationResult:
    """Outcome of quantizing a residual array.

    Attributes
    ----------
    codes:
        Integer quantization codes, 0 where the value is unpredictable.
    unpredictable_mask:
        Boolean mask of values that exceeded the code radius.
    reconstruction:
        Reconstructed values: ``prediction + 2*eb*code`` for predictable
        entries and the exact original value for unpredictable ones.
    """

    codes: np.ndarray
    unpredictable_mask: np.ndarray
    reconstruction: np.ndarray

    @property
    def unpredictable_fraction(self) -> float:
        """Fraction of values stored exactly rather than quantized."""

        if self.unpredictable_mask.size == 0:
            return 0.0
        return float(self.unpredictable_mask.mean())


def quantize_residuals(
    values: np.ndarray,
    predictions: np.ndarray,
    error_bound: float,
    *,
    code_radius: int = DEFAULT_CODE_RADIUS,
) -> QuantizationResult:
    """Quantize ``values - predictions`` with bin width ``2 * error_bound``.

    Returns codes, the unpredictable mask and the reconstruction.  The
    reconstruction of predictable entries is mathematically within
    ``error_bound`` of the original (codes are computed with round-to-
    nearest); a final verification against floating-point corner cases is
    performed and any violating entry is demoted to unpredictable.
    """

    codes, unpredictable, reconstruction = linear_quantize(
        values, predictions, error_bound, code_radius=code_radius
    )
    return QuantizationResult(
        codes=codes, unpredictable_mask=unpredictable, reconstruction=reconstruction
    )


def dequantize_codes(
    codes: np.ndarray, predictions: np.ndarray, error_bound: float
) -> np.ndarray:
    """Reconstruct predictable values from their codes and predictions."""

    ensure_positive(error_bound, "error_bound")
    codes = np.asarray(codes, dtype=np.float64)
    predictions = np.asarray(predictions, dtype=np.float64)
    return predictions + 2.0 * error_bound * codes
