"""Single source of the package version."""

__version__ = "1.0.0"
