"""The ``repro lint`` subcommand: run the invariant checkers, report.

Text output is one ``path:line:col: rule: message`` per finding (the
shape editors and CI annotations understand); ``--format json`` emits a
schema-versioned document with per-finding suppression state so the
bench-trend tooling can track finding counts per PR.  Exit status is 0
iff no *unsuppressed* findings remain.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional, Sequence

from repro.analysis.checkers import all_checkers
from repro.analysis.core import LintResult, run_lint

__all__ = ["add_lint_arguments", "run_lint_command"]

#: Bump when the JSON document shape changes.
JSON_SCHEMA_VERSION = 1


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        default=None,
        metavar="RULE",
        help="run only this rule (repeatable); see --list-rules",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json"),
        default="text",
        help="finding report format",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed findings in text output",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list the registered rules and exit"
    )


def _render_text(result: LintResult, show_suppressed: bool) -> List[str]:
    lines = []
    for finding in result.findings:
        if finding.suppressed and not show_suppressed:
            continue
        suffix = (
            f"  [suppressed: {finding.suppression_reason}]"
            if finding.suppressed
            else ""
        )
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule}: {finding.message}{suffix}"
        )
    n_unsuppressed = len(result.unsuppressed)
    n_suppressed = len(result.findings) - n_unsuppressed
    summary = (
        f"{result.files_checked} files checked: "
        f"{n_unsuppressed} finding(s), {n_suppressed} suppressed"
    )
    lines.append(summary)
    return lines


def _render_json(result: LintResult) -> str:
    document = {
        "schema_version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "counts": {
            "total": len(result.findings),
            "unsuppressed": len(result.unsuppressed),
            "suppressed": len(result.findings) - len(result.unsuppressed),
        },
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def run_lint_command(args: argparse.Namespace) -> int:
    checkers = all_checkers()
    if args.list_rules:
        for checker in checkers:
            print(f"{checker.name}: {checker.description}")
        return 0
    try:
        result = run_lint(args.paths, checkers, rules=args.rules)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    if args.output_format == "json":
        print(_render_json(result))
    else:
        for line in _render_text(result, args.show_suppressed):
            print(line)
    return result.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover
    parser = argparse.ArgumentParser(prog="repro lint")
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(list(argv) if argv else None))
