"""Repo-specific static analysis: ``repro lint``.

Encodes this repository's hard-won invariants as enforced, testable
checkers instead of comments — see :mod:`repro.analysis.core` for the
driver (suppressions, per-file config) and
:mod:`repro.analysis.checkers` for the rules:

============================  =============================================
rule                          invariant
============================  =============================================
``unsafe-cast``               finite/clip mask before float→int casts
``async-blocking``            no blocking work on the serve event loop
``format-version``            every binary tag has a pinned golden fixture
``worker-boundary``           picklable module-level workers, tuple protocol
``seeded-randomness``         randomness flows from explicit seeds
``resource-hygiene``          handles in ``with``; no swallowed exceptions
============================  =============================================

Suppress a deliberate violation with an inline comment that *must* carry
a reason::

    blob = risky()  # repro-lint: disable=unsafe-cast -- inputs pinned finite upstream
"""

from __future__ import annotations

from repro.analysis.checkers import all_checkers
from repro.analysis.core import (
    BAD_SUPPRESSION,
    PARSE_ERROR,
    Checker,
    FileContext,
    Finding,
    LintResult,
    ProjectContext,
    run_lint,
)

__all__ = [
    "all_checkers",
    "run_lint",
    "Checker",
    "Finding",
    "LintResult",
    "FileContext",
    "ProjectContext",
    "BAD_SUPPRESSION",
    "PARSE_ERROR",
]
