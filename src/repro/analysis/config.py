"""Per-file configuration of the invariant checkers.

Kept as data (not code in each checker) so exemptions are reviewable in
one place.  Paths are matched with :func:`fnmatch.fnmatch` against the
display path (posix separators) and also by suffix, so both
``src/repro/utils/rng.py`` and ``repro/utils/rng.py`` spellings work.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

__all__ = [
    "PER_FILE_IGNORES",
    "FIXTURE_DATA_GLOB",
    "BLOCKING_CALLS",
    "BLOCKING_STORE_CLASSES",
]

#: Rules switched off wholesale for specific files.  Use sparingly — a
#: targeted ``repro-lint: disable=<rule> -- <reason>`` comment is almost
#: always better because it documents *why* at the site.
PER_FILE_IGNORES: Dict[str, FrozenSet[str]] = {
    # The rng helper is the designated owner of np.random state: it
    # exists precisely to wrap default_rng/SeedSequence handling.
    "repro/utils/rng.py": frozenset({"seeded-randomness"}),
}

#: Where golden fixtures live: any ``data`` directory under ``tests/``.
FIXTURE_DATA_GLOB = "tests/*data*"

#: Known-blocking callables that must not run directly on the event loop
#: (route them through the executor helper — ``ArrayServer._in_executor``
#: / ``loop.run_in_executor`` — by wrapping the work in a sync function).
BLOCKING_CALLS: FrozenSet[str] = frozenset(
    {
        "open",
        "time.sleep",
        "os.listdir",
        "os.scandir",
        "os.stat",
        "os.remove",
        "os.unlink",
        "os.rename",
        "os.replace",
        "os.makedirs",
        "os.mkdir",
        "os.rmdir",
        "os.fsync",
        "os.walk",
        "os.path.exists",
        "os.path.isfile",
        "os.path.isdir",
        "os.path.getsize",
        "os.path.getmtime",
        "shutil.rmtree",
        "shutil.copy",
        "shutil.copyfile",
        "shutil.copytree",
        "shutil.move",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
    }
)

#: Store classes whose methods do file I/O / CPU-heavy decode: calling
#: any classmethod (``ArrayStore.open(...)``) lexically inside an async
#: body blocks the loop.
BLOCKING_STORE_CLASSES: FrozenSet[str] = frozenset({"ArrayStore", "StoreSnapshot"})
