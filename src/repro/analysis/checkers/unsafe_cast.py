"""unsafe-cast: float-valued expressions cast to integer dtypes unguarded.

The PR 2 ZFP bug class: casting a non-finite float to ``int64`` is
undefined behaviour in NumPy (values wrap silently — and the sign trap
``np.abs(np.int64.min) < 0`` lets a *post*-cast magnitude check pass
garbage through).  The fix that landed in
:func:`repro.compressors.transform.quantize_block_coefficients` masks on
the float ratios *before* the cast; this checker enforces that shape
everywhere:

A call ``X.astype(<int dtype>)`` (or ``np.int64(X)``-style construction)
is flagged when

* ``X`` is *float-sourced* — it contains a true division, a call to a
  float-producing NumPy function (``rint``/``floor``/``ceil``/``log2``
  …), a float literal inside ``np.where``, or a name assigned from such
  an expression earlier in the same scope, **and**
* no dominating finite/clip mask exists: no call to ``np.isfinite`` /
  ``np.isnan`` / ``np.nan_to_num`` / ``np.clip`` appears in the same
  scope at or before the cast line.

Int-to-int and bool casts (``modes.astype(np.uint8)``) are deliberately
not flagged: the checker stays quiet where it cannot see a float source.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.analysis.core import Checker, FileContext, Finding, dotted_name

__all__ = ["UnsafeCastChecker"]

_INT_DTYPES = {
    "int",
    "int8",
    "int16",
    "int32",
    "int64",
    "uint8",
    "uint16",
    "uint32",
    "uint64",
    "intp",
    "uintp",
    "intc",
    "longlong",
}

#: NumPy calls whose result is floating point even for integer inputs.
_FLOAT_PRODUCERS = {
    "rint",
    "floor",
    "ceil",
    "round",
    "trunc",
    "log",
    "log2",
    "log10",
    "log1p",
    "exp",
    "exp2",
    "expm1",
    "sqrt",
    "cbrt",
    "ldexp",
    "divide",
    "true_divide",
    "mean",
    "nanmean",
    "average",
}

_GUARDS = {"isfinite", "isnan", "nan_to_num", "clip"}

_FLOAT_DTYPES = {"float", "float16", "float32", "float64", "double", "longdouble"}


def _tail(name: Optional[str]) -> Optional[str]:
    return None if name is None else name.rsplit(".", 1)[-1]


def _is_int_dtype_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.lstrip("<>=|") in _INT_DTYPES or node.value.lstrip(
            "<>=|"
        ) in {"i1", "i2", "i4", "i8", "u1", "u2", "u4", "u8"}
    name = _tail(dotted_name(node))
    return name in _INT_DTYPES


def _is_float_dtype_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.lstrip("<>=|") in _FLOAT_DTYPES | {"f2", "f4", "f8"}
    return _tail(dotted_name(node)) in _FLOAT_DTYPES


class UnsafeCastChecker(Checker):
    name = "unsafe-cast"
    description = (
        "float-valued expression cast to an integer dtype with no dominating "
        "finite/clip mask in the same scope (the PR 2 non-finite wrap bug)"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target_dtype = self._int_cast_dtype(node)
            if target_dtype is None:
                continue
            operand = self._cast_operand(node)
            if operand is None:
                continue
            if not self._is_float_sourced(ctx, node, operand, set(), 0):
                continue
            if self._has_dominating_guard(ctx, node):
                continue
            findings.append(
                ctx.finding(
                    self.name,
                    node,
                    f"float-valued expression cast to {target_dtype} without a "
                    "dominating finite/clip mask in this scope; mask with "
                    "np.isfinite/np.clip on the float values *before* the cast "
                    "(non-finite casts wrap silently)",
                )
            )
        return findings

    # -- cast recognition ------------------------------------------------
    @staticmethod
    def _int_cast_dtype(call: ast.Call) -> Optional[str]:
        """The target int dtype when ``call`` is an int cast, else None."""

        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            args = list(call.args) + [
                kw.value for kw in call.keywords if kw.arg == "dtype"
            ]
            if len(args) == 1 and _is_int_dtype_expr(args[0]):
                name = dotted_name(args[0])
                if name is None and isinstance(args[0], ast.Constant):
                    name = str(args[0].value)
                return name
            return None
        name = dotted_name(func)
        if name is not None:
            head, _, tail = name.rpartition(".")
            if tail in (_INT_DTYPES - {"int"}) and head in ("np", "numpy", ""):
                if len(call.args) == 1:
                    return name
        return None

    @staticmethod
    def _cast_operand(call: ast.Call) -> Optional[ast.AST]:
        if isinstance(call.func, ast.Attribute) and call.func.attr == "astype":
            return call.func.value
        return call.args[0] if call.args else None

    # -- float-source inference ------------------------------------------
    def _is_float_sourced(
        self,
        ctx: FileContext,
        site: ast.AST,
        expr: ast.AST,
        visited: Set[str],
        depth: int,
    ) -> bool:
        if depth > 6:
            return False
        if isinstance(expr, ast.BinOp):
            if isinstance(expr.op, ast.Div):
                return True
            return self._is_float_sourced(
                ctx, site, expr.left, visited, depth + 1
            ) or self._is_float_sourced(ctx, site, expr.right, visited, depth + 1)
        if isinstance(expr, ast.UnaryOp):
            return self._is_float_sourced(ctx, site, expr.operand, visited, depth + 1)
        if isinstance(expr, ast.Constant):
            return isinstance(expr.value, float)
        if isinstance(expr, ast.Call):
            func_tail = _tail(dotted_name(expr.func))
            if func_tail in _FLOAT_PRODUCERS:
                return True
            if (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "astype"
                and expr.args
                and _is_float_dtype_expr(expr.args[0])
            ):
                return True
            if func_tail == "where":
                return any(
                    self._is_float_sourced(ctx, site, arg, visited, depth + 1)
                    for arg in expr.args
                )
            return False
        if isinstance(expr, ast.Name):
            if expr.id in visited:
                return False
            visited.add(expr.id)
            assigned = self._last_assignment(ctx, site, expr.id)
            if assigned is not None:
                return self._is_float_sourced(ctx, site, assigned, visited, depth + 1)
        return False

    @staticmethod
    def _last_assignment(
        ctx: FileContext, site: ast.AST, name: str
    ) -> Optional[ast.AST]:
        """Value of the last ``name = ...`` in the scope before ``site``."""

        scope = ctx.enclosing_scope(site)
        site_line = getattr(site, "lineno", 0)
        best: Optional[ast.AST] = None
        best_line = -1
        for node in ast.walk(scope):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Name) and target.id == name):
                continue
            if best_line < node.lineno <= site_line:
                best, best_line = node.value, node.lineno
        return best

    # -- guard search -----------------------------------------------------
    @staticmethod
    def _has_dominating_guard(ctx: FileContext, site: ast.AST) -> bool:
        scope = ctx.enclosing_scope(site)
        site_line = getattr(site, "lineno", 0)
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            if getattr(node, "lineno", site_line + 1) > site_line:
                continue
            if _tail(dotted_name(node.func)) in _GUARDS:
                return True
        return False
