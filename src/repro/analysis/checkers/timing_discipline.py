"""timing-discipline: durations must come from monotonic clocks.

The observability layer (PR 8) standardises on ``time.perf_counter()``
for every duration the repo measures — span starts, latency histograms,
benchmark cells, cache timings.  ``time.time()`` is wall clock: NTP can
step it backwards mid-measurement, and a negative "duration" silently
corrupts a benchmark trend or a latency histogram.  On Linux
``perf_counter`` is ``CLOCK_MONOTONIC``, which also makes worker-side
span timestamps comparable to the parent process's.

The checker flags every call to ``time.time()`` / ``time.time_ns()``,
including bare ``time()`` after ``from time import time`` (and aliased
variants of both the module and the function).  Wall clock is still the
right tool for *timestamps* people read — access-log lines, snapshot
metadata — so those few sites carry an inline
``# repro-lint: disable=timing-discipline -- <reason>`` stating that the
value is a point in time, not a duration.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.core import Checker, FileContext, Finding, dotted_name

__all__ = ["TimingDisciplineChecker"]

_WALL_CLOCK_ATTRS = {"time", "time_ns"}


class TimingDisciplineChecker(Checker):
    name = "timing-discipline"
    description = (
        "wall-clock time.time()/time_ns() call; measure durations with "
        "time.perf_counter() or time.monotonic() (suppress with a reason "
        "at genuine timestamp sites such as the access log)"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        module_aliases = set()
        function_aliases = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        module_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and node.level == 0:
                    for alias in node.names:
                        if alias.name in _WALL_CLOCK_ATTRS:
                            function_aliases[alias.asname or alias.name] = alias.name

        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            offender = self._wall_clock_name(node, module_aliases, function_aliases)
            if offender is not None:
                findings.append(
                    ctx.finding(
                        self.name,
                        node,
                        f"wall-clock {offender}() — durations must use "
                        "time.perf_counter() or time.monotonic(); if this is "
                        "a human-readable timestamp (access log, metadata), "
                        "suppress with a reason",
                    )
                )
        return findings

    @staticmethod
    def _wall_clock_name(call, module_aliases, function_aliases):
        name = dotted_name(call.func)
        if name is None:
            return None
        if name in function_aliases:
            return f"time.{function_aliases[name]}"
        head, _, attr = name.rpartition(".")
        if head in module_aliases and attr in _WALL_CLOCK_ATTRS:
            return f"{head}.{attr}"
        return None
