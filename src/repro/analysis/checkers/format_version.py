"""format-version: binary-format discipline for containers and the store.

Every binary format this repo ships is identified by a 4-byte tag
(container magics ``SZR1``/``SZV1``/``ZFR2``/``ZFR3``/``ZFV1``/``ZFV2``/
``MGR2``, store index magic ``RPST``) and the project rule since PR 2 is:
**a format change needs a tag/version bump and a pinned golden fixture**,
so decoders keep reading every byte stream ever written.  This checker
makes the rule mechanical:

* it parses the tag registry out of the source (module-level
  ``*MAGIC* = b"XXXX"`` assignments) and cross-checks that every tag's
  bytes appear in some golden fixture under ``tests/**/data/`` (zip
  archives such as ``.npz`` goldens are searched inside);
* for the store index it parses ``INDEX_VERSION*`` constants out of
  ``store/format.py`` and checks each version number appears in the
  header of at least one pinned ``RPST`` index fixture;
* it enforces that the struct-layout constants of ``store/format.py``
  (underscore names: ``_HEADER``, ``_RECORD``, flag shifts…) are only
  referenced through the format module — importing them elsewhere, or
  re-declaring a registered magic as a bytes literal outside its owning
  module, silently forks the format.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.core import Checker, FileContext, Finding, ProjectContext, dotted_name

__all__ = ["FormatVersionChecker"]

_FORMAT_MODULE_SUFFIX = os.path.join("store", "format.py")


def _is_tag_bytes(value: object) -> bool:
    if not isinstance(value, bytes) or len(value) != 4:
        return False
    try:
        text = value.decode("ascii")
    except UnicodeDecodeError:
        return False
    return text.isupper() or (
        text[0].isupper() and all(c.isupper() or c.isdigit() for c in text)
    )


def _is_format_module(ctx: FileContext) -> bool:
    return ctx.path.endswith(_FORMAT_MODULE_SUFFIX)


class FormatVersionChecker(Checker):
    name = "format-version"
    description = (
        "every binary-format tag needs a pinned golden fixture under "
        "tests/**/data/, and struct-layout constants stay private to the "
        "format module"
    )

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        findings: List[Finding] = []

        # -- gather the tag registry and the format module's internals --
        tags: Dict[bytes, List[Tuple[FileContext, ast.AST]]] = {}
        index_versions: List[Tuple[FileContext, ast.AST, int]] = []
        private_names: Set[str] = set()
        format_ctx = None
        index_magic: bytes = b""
        for ctx in project.files:
            for node in ctx.tree.body:
                if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                value = node.value
                if (
                    "MAGIC" in target.id
                    and isinstance(value, ast.Constant)
                    and _is_tag_bytes(value.value)
                ):
                    tags.setdefault(value.value, []).append((ctx, node))
                if _is_format_module(ctx):
                    format_ctx = ctx
                    if target.id.startswith("_"):
                        private_names.add(target.id)
                    if target.id == "INDEX_MAGIC" and isinstance(
                        value, ast.Constant
                    ) and isinstance(value.value, bytes):
                        index_magic = value.value
                    if target.id.startswith("INDEX_VERSION") and isinstance(
                        value, ast.Constant
                    ) and isinstance(value.value, int):
                        index_versions.append((ctx, node, value.value))

        blobs = project.fixture_blobs() if tags or index_versions else []

        # -- every tag must be pinned by a golden fixture -----------------
        for tag, sites in sorted(tags.items()):
            if any(tag in blob for _name, blob in blobs):
                continue
            ctx, node = sites[0]
            findings.append(
                ctx.finding(
                    self.name,
                    node,
                    f"format tag {tag!r} has no golden fixture under "
                    "tests/**/data/ — every binary format needs a pinned "
                    "golden so old payloads stay decodable (add a fixture "
                    "containing these container bytes)",
                )
            )

        # -- every declared index version must appear in a pinned index --
        if index_versions and index_magic:
            pinned_versions: Set[int] = set()
            for _name, blob in blobs:
                if len(blob) >= 8 and blob[:4] == index_magic:
                    pinned_versions.add(int.from_bytes(blob[4:6], "little"))
            for ctx, node, version in index_versions:
                if version not in pinned_versions:
                    findings.append(
                        ctx.finding(
                            self.name,
                            node,
                            f"index version {version} is declared but no "
                            "pinned index fixture under tests/**/data/ "
                            "carries it in its header — add a golden "
                            "index.bin for this version",
                        )
                    )

        # -- layout privacy ----------------------------------------------
        tag_owners = {
            tag: {ctx.path for ctx, _node in sites} for tag, sites in tags.items()
        }
        for ctx in project.files:
            if format_ctx is not None and ctx.path == format_ctx.path:
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ImportFrom):
                    module = node.module or ""
                    if module.endswith("store.format"):
                        for alias in node.names:
                            if alias.name.startswith("_"):
                                findings.append(
                                    ctx.finding(
                                        self.name,
                                        node,
                                        f"struct-layout constant "
                                        f"{alias.name} imported from the "
                                        "format module; byte layout is "
                                        "private — go through pack_index/"
                                        "unpack_index",
                                    )
                                )
                elif isinstance(node, ast.Attribute):
                    if node.attr in private_names:
                        value_name = dotted_name(node.value) or ""
                        if value_name.split(".")[-1] == "format":
                            findings.append(
                                ctx.finding(
                                    self.name,
                                    node,
                                    f"struct-layout constant {node.attr} "
                                    "referenced outside the format module; "
                                    "byte layout is private — go through "
                                    "pack_index/unpack_index",
                                )
                            )
                elif isinstance(node, ast.Constant) and isinstance(
                    node.value, bytes
                ):
                    owners = tag_owners.get(node.value)
                    if owners and ctx.path not in owners:
                        findings.append(
                            ctx.finding(
                                self.name,
                                node,
                                f"registered format tag {node.value!r} "
                                "re-declared as a literal outside its owning "
                                "module; reference the named constant so tag "
                                "bumps stay single-sited",
                            )
                        )
        return findings
