"""The registered invariant checkers (see ``repro lint --list-rules``)."""

from __future__ import annotations

from typing import List

from repro.analysis.checkers.async_blocking import AsyncBlockingChecker
from repro.analysis.checkers.format_version import FormatVersionChecker
from repro.analysis.checkers.resource_hygiene import ResourceHygieneChecker
from repro.analysis.checkers.seeded_randomness import SeededRandomnessChecker
from repro.analysis.checkers.timing_discipline import TimingDisciplineChecker
from repro.analysis.checkers.unsafe_cast import UnsafeCastChecker
from repro.analysis.checkers.worker_boundary import WorkerBoundaryChecker

__all__ = ["all_checkers"]


def all_checkers() -> List:
    """Fresh instances of every registered checker, in report order."""

    return [
        UnsafeCastChecker(),
        AsyncBlockingChecker(),
        FormatVersionChecker(),
        WorkerBoundaryChecker(),
        SeededRandomnessChecker(),
        ResourceHygieneChecker(),
        TimingDisciplineChecker(),
    ]
