"""worker-boundary: what may cross the ``utils/parallel.py`` process line.

:func:`repro.utils.parallel.parallel_map` defaults to a process pool, so
whatever is submitted must pickle: lambdas and closures fail outright
(or, with fork tricks, silently copy the enclosing frame per task).  The
repo's worker protocol is therefore *module-level functions over
self-contained task tuples* (``_compress_tile`` / ``_compress_chunk``),
and halo workers return the documented payload tuple — payload plus
faces plus context — never a bare ndarray whose meaning the scheduler
has to guess.

Since the zero-copy refactor, bulk arrays cross the boundary as
*descriptors*: a :class:`~repro.utils.parallel.SharedArraySpec` names a
shared segment, workers ``read_shared`` their region in place and
``write_shared`` results back, and the segment lifecycle belongs to the
submitting side's :class:`~repro.utils.parallel.SharedArraySession`.
That discipline only holds if nobody constructs ``SharedMemory`` by
hand, so the checker enforces it alongside the pickle rules.

Flags:

* a ``lambda`` or a nested (closure) function passed as the callable to
  ``parallel_map`` / a ``WorkerPool``'s ``.map`` / ``memoized_map``'s
  compute path / ``Executor.submit``;
* ``functools.partial`` over such a callable;
* ``ProcessPoolExecutor`` construction outside ``utils/parallel.py`` —
  parallelism routes through the one wrapper so worker hygiene has a
  single enforcement point;
* ``SharedMemory`` construction outside ``utils/parallel.py`` — shared
  segments route through ``SharedArraySession`` / ``read_shared`` /
  ``write_shared`` so naming, cleanup (unlink on every exit path) and
  the pickle fallback have one enforcement point;
* inside a worker function (a module-level function submitted to
  ``parallel_map`` in the same file): ``return np.<...>(...)`` /
  ``return <x>.astype(...)`` bare-ndarray returns where the protocol
  expects the documented result tuple or a named result object.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.core import Checker, FileContext, Finding, dotted_name

__all__ = ["WorkerBoundaryChecker"]

_SUBMIT_FUNCS = {"parallel_map"}
_PARALLEL_MODULE_SUFFIX = os.path.join("utils", "parallel.py")


def _tail(name: Optional[str]) -> str:
    return "" if name is None else name.rsplit(".", 1)[-1]


class WorkerBoundaryChecker(Checker):
    name = "worker-boundary"
    description = (
        "only picklable module-level callables cross the parallel_map "
        "worker boundary, and workers return the documented payload tuples"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        module_funcs: Dict[str, ast.AST] = {
            node.name: node
            for node in ctx.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        nested_funcs: Set[str] = {
            node.name
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and ctx.enclosing_function(node) is not None
        }

        worker_names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func_tail = _tail(dotted_name(node.func))
            if func_tail == "ProcessPoolExecutor" and not ctx.path.endswith(
                _PARALLEL_MODULE_SUFFIX
            ):
                findings.append(
                    ctx.finding(
                        self.name,
                        node,
                        "direct ProcessPoolExecutor use; route parallelism "
                        "through utils/parallel.parallel_map so worker "
                        "hygiene has one enforcement point",
                    )
                )
                continue
            if func_tail == "SharedMemory" and not ctx.path.endswith(
                _PARALLEL_MODULE_SUFFIX
            ):
                findings.append(
                    ctx.finding(
                        self.name,
                        node,
                        "direct SharedMemory construction; shared segments "
                        "route through utils/parallel.SharedArraySession and "
                        "the read_shared/write_shared descriptor protocol so "
                        "cleanup and fallback have one enforcement point",
                    )
                )
                continue
            if func_tail in _SUBMIT_FUNCS and node.args:
                findings.extend(
                    self._check_submitted(ctx, node.args[0], worker_names,
                                          nested_funcs)
                )
            elif func_tail == "submit" and node.args:
                findings.extend(
                    self._check_submitted(ctx, node.args[0], worker_names,
                                          nested_funcs)
                )
            elif (
                func_tail == "map"
                and isinstance(node.func, ast.Attribute)
                and node.args
            ):
                # Pool-style `.map` submission (WorkerPool / Executor).
                # The builtin `map(...)` is a plain Name call and stays
                # out of scope.
                findings.extend(
                    self._check_submitted(ctx, node.args[0], worker_names,
                                          nested_funcs)
                )

        for name in sorted(worker_names):
            worker = module_funcs.get(name)
            if worker is None:
                continue
            findings.extend(self._check_worker_returns(ctx, worker))
        return findings

    def _check_submitted(
        self,
        ctx: FileContext,
        callable_arg: ast.AST,
        worker_names: Set[str],
        nested_funcs: Set[str],
    ) -> Iterable[Finding]:
        if isinstance(callable_arg, ast.Lambda):
            yield ctx.finding(
                self.name,
                callable_arg,
                "lambda submitted to the worker pool; lambdas don't pickle "
                "across the process boundary — use a module-level function "
                "over a self-contained task tuple",
            )
            return
        if (
            isinstance(callable_arg, ast.Call)
            and _tail(dotted_name(callable_arg.func)) == "partial"
            and callable_arg.args
        ):
            yield from self._check_submitted(
                ctx, callable_arg.args[0], worker_names, nested_funcs
            )
            return
        if isinstance(callable_arg, ast.Name):
            if callable_arg.id in nested_funcs:
                yield ctx.finding(
                    self.name,
                    callable_arg,
                    f"closure {callable_arg.id!r} submitted to the worker "
                    "pool; nested functions don't pickle (and capture their "
                    "enclosing frame) — hoist it to module level",
                )
            else:
                worker_names.add(callable_arg.id)

    def _check_worker_returns(
        self, ctx: FileContext, worker: ast.AST
    ) -> Iterable[Finding]:
        for node in ast.walk(worker):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            is_bare_array = False
            if isinstance(value, ast.Call):
                name = dotted_name(value.func) or ""
                if name.split(".", 1)[0] in ("np", "numpy"):
                    is_bare_array = True
                if isinstance(value.func, ast.Attribute) and value.func.attr == (
                    "astype"
                ):
                    is_bare_array = True
            if is_bare_array:
                yield ctx.finding(
                    self.name,
                    node,
                    f"worker {getattr(worker, 'name', '?')} returns a bare "
                    "ndarray expression; the worker protocol expects the "
                    "documented payload tuple (or a named result object) so "
                    "the scheduler never has to guess array meaning",
                )
