"""async-blocking: blocking work lexically inside ``async def`` bodies.

The serve layer's cardinal rule: the event loop thread only parses,
routes and awaits — file I/O, store opens and chunk decode run on the
thread-pool executor (``ArrayServer._in_executor``).  A single blocking
call on the loop stalls *every* connection, which no test catches until
a latency SLO does.

The checker walks each ``async def`` and flags, among nodes whose
**nearest** enclosing function is that coroutine (nested sync ``def`` /
``lambda`` bodies are exactly how work is handed to the executor, so
they do not count):

* calls to known-blocking APIs (``open``, ``time.sleep``, ``os.*`` I/O,
  ``shutil``/``subprocess``, per-repo: any ``ArrayStore.*`` /
  ``StoreSnapshot.*`` classmethod);
* ``.acquire()`` on anything — asyncio primitives must be entered with
  ``async with`` (a raw ``acquire`` leaks on cancellation), and a
  ``threading`` lock would block the loop outright;
* a synchronous ``with`` over a lock-like ``.read()`` / ``.write()`` /
  ``.lock()`` context (the dataset RW locks) — these are asynchronous
  context managers and need ``async with``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.config import BLOCKING_CALLS, BLOCKING_STORE_CLASSES
from repro.analysis.core import Checker, FileContext, Finding, dotted_name, iter_body_nodes

__all__ = ["AsyncBlockingChecker"]

_LOCKY_METHODS = {"read", "write", "lock", "read_lock", "write_lock"}


def _blocking_call_name(call: ast.Call) -> Optional[str]:
    name = dotted_name(call.func)
    if name in BLOCKING_CALLS:
        return name
    if isinstance(call.func, ast.Attribute):
        value_name = dotted_name(call.func.value)
        if value_name in BLOCKING_STORE_CLASSES:
            return f"{value_name}.{call.func.attr}"
    return None


def _looks_lock_like(ctx: FileContext, node: ast.AST) -> bool:
    """Heuristic: does the context-manager source mention a lock?"""

    text = ast.get_source_segment(ctx.source, node) or ""
    return "lock" in text.lower()


class AsyncBlockingChecker(Checker):
    name = "async-blocking"
    description = (
        "blocking call / sync lock acquisition lexically inside an async "
        "def body (route store and file work through the executor helper)"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for func in ast.walk(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in iter_body_nodes(func):
                if isinstance(node, ast.Call):
                    blocking = _blocking_call_name(node)
                    if blocking is not None:
                        findings.append(
                            ctx.finding(
                                self.name,
                                node,
                                f"blocking call {blocking}() inside async def "
                                f"{func.name}; wrap the work in a sync function "
                                "and route it through the executor helper "
                                "(run_in_executor)",
                            )
                        )
                        continue
                    if (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "acquire"
                    ):
                        findings.append(
                            ctx.finding(
                                self.name,
                                node,
                                f".acquire() inside async def {func.name}; "
                                "enter locks with 'async with' (raw acquire "
                                "blocks the loop or leaks on cancellation)",
                            )
                        )
                elif isinstance(node, ast.With):
                    for item in node.items:
                        expr = item.context_expr
                        if (
                            isinstance(expr, ast.Call)
                            and isinstance(expr.func, ast.Attribute)
                            and expr.func.attr in _LOCKY_METHODS
                            and _looks_lock_like(ctx, expr)
                        ):
                            findings.append(
                                ctx.finding(
                                    self.name,
                                    node,
                                    f"synchronous 'with' over lock context "
                                    f".{expr.func.attr}() inside async def "
                                    f"{func.name}; the RW-lock contexts are "
                                    "async — use 'async with'",
                                )
                            )
        return findings
