"""seeded-randomness: all randomness flows from explicit seeds.

Reproduction experiments must replay bit-for-bit: every random draw goes
through :func:`repro.utils.rng.make_rng` (or an explicitly seeded
``np.random.default_rng``).  The legacy global-state API
(``np.random.seed`` / ``np.random.normal`` / ``np.random.RandomState`` …)
couples unrelated call sites through hidden state and breaks replay under
parallel execution, so it is flagged everywhere — with one carve-out: a
``datasets/`` generator whose enclosing function accepts an explicit
``seed``/``rng`` parameter may use it while migrating.  An unseeded
``np.random.default_rng()`` (no argument → OS entropy) is flagged
unconditionally.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.core import Checker, FileContext, Finding, dotted_name

__all__ = ["SeededRandomnessChecker"]

#: The global-state (legacy) np.random surface.
_LEGACY = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "choice",
    "shuffle",
    "permutation",
    "normal",
    "uniform",
    "standard_normal",
    "standard_cauchy",
    "poisson",
    "exponential",
    "binomial",
    "beta",
    "gamma",
    "lognormal",
    "get_state",
    "set_state",
    "RandomState",
}

_SEED_PARAMS = {"seed", "rng", "random_state"}


def _function_accepts_seed(func: ast.AST) -> bool:
    args = getattr(func, "args", None)
    if args is None:
        return False
    names = [a.arg for a in args.args + args.kwonlyargs + args.posonlyargs]
    return any(name in _SEED_PARAMS for name in names)


class SeededRandomnessChecker(Checker):
    name = "seeded-randomness"
    description = (
        "randomness must flow from explicit seeds (make_rng / seeded "
        "default_rng); the np.random global-state API breaks replay"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        in_datasets = "datasets" in ctx.display_path.replace("\\", "/").split("/")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            head, _, tail = name.rpartition(".")
            if head not in ("np.random", "numpy.random"):
                continue
            if tail == "default_rng":
                if not node.args and not node.keywords:
                    findings.append(
                        ctx.finding(
                            self.name,
                            node,
                            "np.random.default_rng() without a seed draws OS "
                            "entropy; pass an explicit seed (or use "
                            "utils.rng.make_rng)",
                        )
                    )
                continue
            if tail not in _LEGACY:
                continue
            if in_datasets:
                func = ctx.enclosing_function(node)
                if func is not None and _function_accepts_seed(func):
                    continue
            findings.append(
                ctx.finding(
                    self.name,
                    node,
                    f"legacy global-state call np.random.{tail}(); draw from "
                    "an explicit generator instead (utils.rng.make_rng(seed) "
                    "/ np.random.default_rng(seed)) so experiments replay "
                    "deterministically",
                )
            )
        return findings
