"""resource-hygiene: file handles live in ``with``; exceptions don't vanish.

Two small disciplines with outsized debugging cost when violated:

* ``open()`` / ``tempfile.NamedTemporaryFile`` (and friends) must be used
  as context managers.  A handle bound to a local leaks on any exception
  path between the call and ``.close()`` — on the serve layer that is a
  file-descriptor leak per failed request.  Returning the handle directly
  (``return open(...)``) transfers ownership to a caller who enters it
  (the snapshot's ``_open_data`` factory pattern) and is allowed.
* ``except Exception:`` / bare ``except:`` handlers must not swallow: a
  handler that neither re-raises nor uses the caught exception object
  (to wrap, report or record it) turns store corruption and serve faults
  into silent wrong answers.  Narrow exception types are out of scope —
  catching what you can actually handle is the point.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.core import Checker, FileContext, Finding, dotted_name

__all__ = ["ResourceHygieneChecker"]

_HANDLE_FACTORIES = {
    "open",
    "tempfile.NamedTemporaryFile",
    "tempfile.TemporaryFile",
    "tempfile.TemporaryDirectory",
    "NamedTemporaryFile",
    "TemporaryFile",
    "TemporaryDirectory",
}

_BROAD = {"Exception", "BaseException"}


def _is_ownership_transfer(ctx: FileContext, call: ast.Call) -> bool:
    """Inside a ``with`` item, or directly returned/yielded to the caller."""

    node: ast.AST = call
    for ancestor in ctx.ancestors(call):
        if isinstance(ancestor, ast.withitem) and ancestor.context_expr in (
            node,
            call,
        ):
            return True
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            # Wrapped (e.g. contextlib.closing(open(...))) under a with item.
            if any(_contains(item.context_expr, call) for item in ancestor.items):
                return True
            return False
        if isinstance(ancestor, (ast.Return, ast.Yield)):
            return True
        if isinstance(ancestor, ast.stmt):
            return False
        node = ancestor
    return False


def _contains(tree: ast.AST, target: ast.AST) -> bool:
    return any(node is target for node in ast.walk(tree))


class ResourceHygieneChecker(Checker):
    name = "resource-hygiene"
    description = (
        "open()/NamedTemporaryFile outside 'with', and broad except "
        "handlers that swallow the exception"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _HANDLE_FACTORIES and not _is_ownership_transfer(
                    ctx, node
                ):
                    findings.append(
                        ctx.finding(
                            self.name,
                            node,
                            f"{name}() outside a 'with' block; the handle "
                            "leaks on any exception path — use a context "
                            "manager (or return it directly to transfer "
                            "ownership)",
                        )
                    )
            elif isinstance(node, ast.ExceptHandler):
                finding = self._check_handler(ctx, node)
                if finding is not None:
                    findings.append(finding)
        return findings

    def _check_handler(
        self, ctx: FileContext, handler: ast.ExceptHandler
    ) -> Optional[Finding]:
        if handler.type is None:
            caught = "bare except"
        else:
            type_name = dotted_name(handler.type)
            if type_name not in _BROAD:
                return None
            caught = f"except {type_name}"
        has_raise = any(
            isinstance(child, ast.Raise) for child in ast.walk(handler)
        )
        if has_raise:
            return None
        if handler.name is not None:
            uses_exc = any(
                isinstance(child, ast.Name)
                and child.id == handler.name
                and isinstance(child.ctx, ast.Load)
                for child in ast.walk(handler)
            )
            if uses_exc:
                return None
        return ctx.finding(
            self.name,
            handler,
            f"{caught} swallows the exception (no re-raise, caught object "
            "unused); re-raise, narrow the type, or wrap it into the "
            "structured error path so faults stay visible",
        )
