"""Checker driver for the repo-specific invariant lint (``repro lint``).

Generic linters cannot see this repository's hard-won invariants — the
finite-mask-before-int-cast discipline that PR 2's ZFP bug taught, the
serve layer's never-block-the-event-loop rule, the container-tag /
golden-fixture pairing of the binary formats.  This module is the small
framework the individual checkers (:mod:`repro.analysis.checkers`) plug
into:

* :class:`FileContext` — one parsed source file with a parent map and
  nearest-enclosing-function tracking, so checkers can ask structural
  questions (``is this call lexically inside an async def?``) without
  re-walking the tree themselves.
* :class:`ProjectContext` — the full set of linted files plus lazy access
  to the golden fixture blobs under ``tests/**/data/`` for cross-file
  checks (the format-version checker).
* Suppressions — ``# repro-lint: disable=RULE -- reason`` on the flagged
  line (or alone on the line above), ``disable-file=RULE -- reason``
  anywhere for a whole file.  A suppression **must carry a reason** after
  ``--``; one without a reason (or naming an unknown rule) is itself
  reported as a ``bad-suppression`` finding and does not suppress.
* :func:`run_lint` — collect files, run the enabled checkers, apply
  suppressions and the per-file config, return a :class:`LintResult`.

Checkers yield :class:`Finding` objects; the driver fills in suppression
state.  Suppressed findings stay in the result (machine-readable output
reports them) but do not affect the exit status.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import os
import re
import tokenize
import zipfile
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.config import FIXTURE_DATA_GLOB, PER_FILE_IGNORES

__all__ = [
    "Finding",
    "FileContext",
    "ProjectContext",
    "Checker",
    "LintResult",
    "run_lint",
    "dotted_name",
    "iter_body_nodes",
    "BAD_SUPPRESSION",
    "PARSE_ERROR",
]

#: Meta-rules emitted by the driver itself (not registered checkers).
BAD_SUPPRESSION = "bad-suppression"
PARSE_ERROR = "parse-error"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable-file|disable)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\- ]+?)\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass
class Finding:
    """One checker hit: where, which invariant, and its suppression state."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    suppression_reason: Optional[str] = None

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "suppression_reason": self.suppression_reason,
        }


@dataclass
class _Suppression:
    kind: str  # "disable" | "disable-file"
    rules: Tuple[str, ...]
    reason: Optional[str]
    line: int
    code_before_comment: bool


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains (and bare names); else ``None``."""

    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_body_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Nodes whose *nearest* enclosing function is ``func``.

    Descends statements/expressions but stops at nested ``def`` /
    ``async def`` / ``lambda`` boundaries: their bodies execute later (and
    typically elsewhere — the serve layer ships them to the executor), so
    they are not part of ``func``'s own execution.
    """

    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class FileContext:
    """One parsed file plus the structural maps checkers rely on."""

    def __init__(self, path: str, display_path: str, source: str, tree: ast.Module):
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.parents: Dict[ast.AST, ast.AST] = {}
        self.func_of: Dict[ast.AST, Optional[ast.AST]] = {}
        self._build_maps()
        self.suppressions = self._scan_suppressions()

    def _build_maps(self) -> None:
        def visit(node: ast.AST, func: Optional[ast.AST]) -> None:
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
                self.func_of[child] = func
                child_func = func
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    child_func = child
                visit(child, child_func)

        visit(self.tree, None)

    # -- structure queries ----------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """Nearest ``def`` / ``async def`` / ``lambda`` above ``node``."""

        return self.func_of.get(node)

    def enclosing_scope(self, node: ast.AST) -> ast.AST:
        """The enclosing function, or the module when at top level."""

        return self.func_of.get(node) or self.tree

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule,
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )

    # -- suppressions ----------------------------------------------------
    def _scan_suppressions(self) -> List[_Suppression]:
        # Real comment tokens only: the directive syntax may legitimately
        # appear inside docstrings and message strings (this module's own
        # documentation does), and those must not count as suppressions.
        found: List[_Suppression] = []
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.source).readline)
            )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return found
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            rules = tuple(
                r.strip() for r in match.group("rules").split(",") if r.strip()
            )
            lineno, col = token.start
            before = self.lines[lineno - 1][:col].strip()
            found.append(
                _Suppression(
                    kind=match.group("kind"),
                    rules=rules,
                    reason=match.group("reason"),
                    line=lineno,
                    code_before_comment=bool(before),
                )
            )
        return found

    def suppression_for(self, finding: Finding) -> Optional[_Suppression]:
        """The suppression covering ``finding``, if any (reasons validated
        separately by the driver)."""

        for sup in self.suppressions:
            if finding.rule not in sup.rules:
                continue
            if sup.kind == "disable-file":
                return sup
            # Trailing comments cover their own line; comment-only lines
            # cover the following line.
            covered = sup.line if sup.code_before_comment else sup.line + 1
            if finding.line == covered:
                return sup
        return None


class ProjectContext:
    """All linted files plus the golden-fixture corpus for cross-file checks."""

    def __init__(self, files: Sequence[FileContext], project_root: str):
        self.files = list(files)
        self.project_root = project_root
        self._fixture_blobs: Optional[List[Tuple[str, bytes]]] = None

    def fixture_blobs(self) -> List[Tuple[str, bytes]]:
        """``(name, bytes)`` for every file under ``tests/**/data/``.

        Zip containers (``.npz``) are expanded so container tags stored
        inside golden archives are visible to substring search.
        """

        if self._fixture_blobs is not None:
            return self._fixture_blobs
        blobs: List[Tuple[str, bytes]] = []
        pattern_root = os.path.join(self.project_root, "tests")
        for dirpath, _dirnames, filenames in os.walk(pattern_root):
            rel = os.path.relpath(dirpath, self.project_root)
            if not fnmatch.fnmatch(rel.replace(os.sep, "/"), FIXTURE_DATA_GLOB):
                continue
            for filename in sorted(filenames):
                full = os.path.join(dirpath, filename)
                with open(full, "rb") as handle:
                    data = handle.read()
                blobs.append((os.path.join(rel, filename), data))
                if zipfile.is_zipfile(full):
                    with zipfile.ZipFile(full) as archive:
                        for member in archive.namelist():
                            blobs.append(
                                (f"{rel}/{filename}:{member}", archive.read(member))
                            )
        self._fixture_blobs = blobs
        return blobs


class Checker:
    """Base class: subclasses set ``name``/``description`` and override
    :meth:`check_file` and/or :meth:`check_project`."""

    name: str = ""
    description: str = ""

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        return ()


@dataclass
class LintResult:
    """Everything ``repro lint`` reports: findings plus corpus counters."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def exit_code(self) -> int:
        return 1 if self.unsuppressed else 0


def _collect_files(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        files.append(os.path.join(dirpath, filename))
        elif path.endswith(".py"):
            files.append(path)
        else:
            raise ValueError(f"not a Python file or directory: {path}")
    seen = set()
    unique = []
    for path in files:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _display_path(path: str) -> str:
    rel = os.path.relpath(path)
    return path if rel.startswith("..") else rel


def _ignored_rules(display_path: str) -> frozenset:
    posix = display_path.replace(os.sep, "/")
    ignored = set()
    for pattern, rules in PER_FILE_IGNORES.items():
        if fnmatch.fnmatch(posix, pattern) or posix.endswith(pattern):
            ignored.update(rules)
    return frozenset(ignored)


def run_lint(
    paths: Sequence[str],
    checkers: Sequence[Checker],
    rules: Optional[Sequence[str]] = None,
    project_root: Optional[str] = None,
) -> LintResult:
    """Run ``checkers`` (optionally filtered to ``rules``) over ``paths``."""

    if rules is not None:
        known = {c.name for c in checkers} | {BAD_SUPPRESSION, PARSE_ERROR}
        unknown = sorted(set(rules) - known)
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(unknown)}")
        checkers = [c for c in checkers if c.name in set(rules)]
    known_rules = {c.name for c in checkers} | {BAD_SUPPRESSION, PARSE_ERROR}

    result = LintResult()
    contexts: List[FileContext] = []
    for path in _collect_files(paths):
        display = _display_path(path)
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            result.findings.append(
                Finding(
                    rule=PARSE_ERROR,
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        contexts.append(FileContext(path, display, source, tree))
    result.files_checked = len(contexts)

    raw: List[Finding] = []
    for ctx in contexts:
        ignored = _ignored_rules(ctx.display_path)
        for checker in checkers:
            if checker.name in ignored:
                continue
            raw.extend(checker.check_file(ctx))

    project = ProjectContext(contexts, project_root or os.getcwd())
    by_display = {ctx.display_path: ctx for ctx in contexts}
    for checker in checkers:
        for finding in checker.check_project(project):
            if checker.name in _ignored_rules(finding.path):
                continue
            raw.append(finding)

    # Suppression pass: a suppression only takes effect when it carries a
    # reason and names known rules — anything else is itself a finding.
    for ctx in contexts:
        for sup in ctx.suppressions:
            unknown = sorted(set(sup.rules) - known_rules)
            problems = []
            if not sup.reason:
                problems.append("missing the required '-- reason'")
            if unknown:
                problems.append(f"unknown rule(s) {', '.join(unknown)}")
            if problems:
                raw.append(
                    Finding(
                        rule=BAD_SUPPRESSION,
                        path=ctx.display_path,
                        line=sup.line,
                        col=1,
                        message=(
                            "suppression "
                            f"'{sup.kind}={','.join(sup.rules)}' is "
                            + " and ".join(problems)
                            + " (syntax: # repro-lint: disable=RULE -- reason)"
                        ),
                    )
                )

    for finding in raw:
        ctx = by_display.get(finding.path)
        if ctx is not None and finding.rule not in (BAD_SUPPRESSION, PARSE_ERROR):
            sup = ctx.suppression_for(finding)
            if sup is not None and sup.reason:
                finding.suppressed = True
                finding.suppression_reason = sup.reason
        result.findings.append(finding)

    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result
