"""Block-sampling compression-ratio estimation (Lu et al. style).

Lu et al. (IPDPS 2018) estimate the compression ratio of SZ and ZFP by
compressing a small sample of data blocks and extrapolating, relying on
compressor-specific details.  This module implements the generic form of
that idea against our compressors: draw ``n_blocks`` random ``block_size``
tiles from the field (square tiles on 2D fields, cubes on 3D volumes),
compress each with the target compressor, and estimate the full-field CR
from the sampled compressed sizes.

Every sampled tile pays the compressor's per-tile container overhead
(magic, shape header, entropy-coder symbol tables) that the full field
pays only once, and that overhead differs *per compressor* — SZ's Huffman
tables cost far more per tile than ZFP's plane groups — which made the
raw estimator systematically under-estimate SZ relative to ZFP.
``overhead_correction`` (default on) removes that bias with a two-scale
extrapolation: the per-byte compressed rate is sampled at ``block_size``
and ``2 * block_size`` tiles, and since the per-tile overhead amortises
with tile area (volume in 3D) — ``rate(s) = r_inf + c / s^d`` — the
infinite-tile rate follows by Richardson extrapolation with the per-ndim
coefficient, ``r_inf = (2^d * r_2s - r_s) / (2^d - 1)`` (``(4*r2 - r)/3``
for planes, ``(8*r2 - r)/7`` for volumes).  Fields too small for
double-size tiles fall back to subtracting the compressor's fixed header
cost (measured on a constant tile).

On rough fields SZ additionally exploits cross-tile redundancy that only
operates *above* the double-tile scale (repeated quantization patterns
across distant tiles), so the two-scale extrapolation still under-states
SZ there.  When the field admits it, one additional ``4 * block_size``
tile (128^2 with the default block size) is sampled and the Richardson
pair is re-anchored at the two largest scales, closing that bias while
keeping the two-scale overhead correction machinery intact; disable via
``large_tile=False``.  The uncorrected form
(``overhead_correction=False``) is kept for the baseline benchmark that
quantifies the bias the paper attributes to compressor-specific
estimators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.compressors.registry import make_compressor
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import ensure_ndim, ensure_positive

__all__ = [
    "BlockSamplingEstimate",
    "estimate_cr_by_sampling",
    "measure_fixed_overhead",
]


@dataclass(frozen=True)
class BlockSamplingEstimate:
    """Result of a block-sampling CR estimation."""

    compressor: str
    error_bound: float
    estimated_cr: float
    sampled_fraction: float
    n_blocks: int
    block_size: int
    per_block_crs: Tuple[float, ...]
    #: Fixed per-tile container overhead (bytes) removed from the
    #: extrapolation; 0 when the correction is disabled.
    overhead_bytes_per_block: float = 0.0
    #: Tile edges actually sampled (base scale, plus the double/quad
    #: scales when the overhead correction took them).
    scales: Tuple[int, ...] = ()

    @property
    def cr_std(self) -> float:
        """Dispersion of the per-block compression ratios."""

        return float(np.std(self.per_block_crs)) if self.per_block_crs else float("nan")


def measure_fixed_overhead(compressor, block_size: int, *, ndim: int = 2) -> int:
    """Fixed container overhead of one ``block_size`` tile, in bytes.

    A constant tile carries no information beyond its header: predictors
    reduce it to an all-zero code stream, so its compressed size is the
    per-tile cost the estimator would otherwise multiply by the sample
    count.  ``ndim`` selects a square (2) or cubic (3) probe tile.
    """

    tile = np.zeros((block_size,) * ndim, dtype=np.float64)
    return compressor.compress(tile).compressed_nbytes


def estimate_cr_by_sampling(
    field: np.ndarray,
    compressor: str,
    error_bound: float,
    *,
    n_blocks: int = 16,
    block_size: int | None = None,
    seed: SeedLike = None,
    overhead_correction: bool = True,
    large_tile: bool = True,
    **compressor_options,
) -> BlockSamplingEstimate:
    """Estimate the compression ratio of ``field`` from sampled blocks.

    ``field`` may be a 2D plane or a 3D volume; tiles are squares or cubes
    of edge ``block_size`` (default 32 in 2D, 16 in 3D).  The estimator
    compresses ``n_blocks`` randomly positioned tiles and uses the ratio
    of total original bytes to total compressed bytes of the sample as the
    estimate (the aggregate form is less noisy than averaging per-block
    CRs).  With ``overhead_correction`` (default) the compressor's fixed
    per-tile container overhead is subtracted via the two-scale Richardson
    extrapolation, and — when ``large_tile`` is on and the field admits a
    ``4 * block_size`` tile — one quad-scale tile re-anchors the
    extrapolation at the two largest scales (the rough-field SZ
    cross-tile-redundancy fix).
    """

    field = ensure_ndim(field, (2, 3), "field")
    if block_size is None:
        block_size = 32 if field.ndim == 2 else 16
    ensure_positive(error_bound, "error_bound")
    ensure_positive(n_blocks, "n_blocks")
    ensure_positive(block_size, "block_size")
    if min(field.shape) < block_size:
        raise ValueError(
            f"field shape {field.shape} is smaller than the sampling block size {block_size}"
        )

    rng = make_rng(seed)
    codec = make_compressor(compressor, error_bound, **compressor_options)

    def sample(count: int, size: int):
        original = 0
        compressed = 0
        ratios: list = []
        for _ in range(count):
            start = [
                int(rng.integers(0, length - size + 1)) for length in field.shape
            ]
            region = tuple(slice(i, i + size) for i in start)
            tile = np.ascontiguousarray(field[region])
            result = codec.compress(tile)
            original += result.original_nbytes
            compressed += result.compressed_nbytes
            ratios.append(result.compression_ratio)
        return original, compressed, ratios

    original_bytes, compressed_bytes, per_block = sample(int(n_blocks), block_size)
    total_sampled_bytes = original_bytes
    scales = [int(block_size)]

    overhead = 0.0
    estimated = (
        original_bytes / compressed_bytes if compressed_bytes else float("inf")
    )
    double = 2 * block_size
    quad = 4 * block_size
    if overhead_correction and compressed_bytes:
        rate = compressed_bytes / original_bytes
        if min(field.shape) >= double:
            # Two-scale Richardson extrapolation of the per-byte rate: the
            # per-tile overhead amortises with tile area (volume in 3D),
            # rate(s) = r_inf + c/s^d, so a second, double-size scale
            # eliminates the overhead term with coefficient 2^d.
            factor = float(2**field.ndim)
            n2 = max(2, int(n_blocks) // 2)
            original2, compressed2, _ = sample(n2, double)
            total_sampled_bytes += original2
            scales.append(double)
            rate2 = compressed2 / original2 if original2 else rate
            # Clamp: sampling noise can push the extrapolation through
            # zero for trivially compressible data.
            rate_inf = max(
                (factor * rate2 - rate) / (factor - 1.0), 0.25 * rate2
            )
            if large_tile and min(field.shape) >= quad:
                # One quad-scale tile: cross-tile redundancy (rough-field
                # SZ) only shows up above the double-tile scale, so the
                # Richardson pair is re-anchored at (2s, 4s).  A single
                # tile suffices — at this size the sample is a sizeable
                # fraction of the field already.
                original4, compressed4, _ = sample(1, quad)
                total_sampled_bytes += original4
                scales.append(quad)
                rate4 = compressed4 / original4 if original4 else rate2
                rate_inf = max(
                    (factor * rate4 - rate2) / (factor - 1.0), 0.25 * rate4
                )
            estimated = 1.0 / rate_inf
            tile_bytes = block_size**field.ndim * field.dtype.itemsize
            overhead = max((rate - rate_inf) * tile_bytes, 0.0)
        else:
            # Field too small for the second scale: subtract the fixed
            # header cost measured on a constant tile, charged once.
            overhead = float(
                measure_fixed_overhead(codec, int(block_size), ndim=field.ndim)
            )
            field_bytes = field.size * field.dtype.itemsize
            body = max(compressed_bytes - n_blocks * overhead, 0.0)
            projected = body * (field_bytes / original_bytes) + overhead
            estimated = field_bytes / projected if projected > 0 else float("inf")

    # Count every compressed sample (all scales), not just the first pass,
    # so the reported cost of the estimate is honest.
    sampled_fraction = total_sampled_bytes / float(
        field.size * field.dtype.itemsize
    )
    return BlockSamplingEstimate(
        compressor=compressor,
        error_bound=float(error_bound),
        estimated_cr=float(estimated),
        sampled_fraction=float(min(sampled_fraction, 1.0)),
        n_blocks=int(n_blocks),
        block_size=int(block_size),
        per_block_crs=tuple(per_block),
        overhead_bytes_per_block=float(overhead),
        scales=tuple(scales),
    )
