"""Block-sampling compression-ratio estimation (Lu et al. style).

Lu et al. (IPDPS 2018) estimate the compression ratio of SZ and ZFP by
compressing a small sample of data blocks and extrapolating, relying on
compressor-specific details.  This module implements the generic form of
that idea against our compressors: draw ``n_blocks`` random ``block_size``
tiles from the field, compress each with the target compressor, and
estimate the full-field CR from the sampled compressed sizes.

Every sampled tile pays the compressor's per-tile container overhead
(magic, shape header, entropy-coder symbol tables) that the full field
pays only once, and that overhead differs *per compressor* — SZ's Huffman
tables cost far more per tile than ZFP's plane groups — which made the
raw estimator systematically under-estimate SZ relative to ZFP.
``overhead_correction`` (default on) removes that bias with a two-scale
extrapolation: the per-byte compressed rate is sampled at ``block_size``
and ``2 * block_size`` tiles, and since the per-tile overhead amortises
with tile area, the infinite-tile rate follows by Richardson
extrapolation (``r_inf = (4 * r_2s - r_s) / 3``).  Fields too small for
double-size tiles fall back to subtracting the compressor's fixed header
cost (measured on a constant tile).  The uncorrected form
(``overhead_correction=False``) is kept for the baseline benchmark that
quantifies the bias the paper attributes to compressor-specific
estimators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.compressors.registry import make_compressor
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import ensure_2d, ensure_positive

__all__ = [
    "BlockSamplingEstimate",
    "estimate_cr_by_sampling",
    "measure_fixed_overhead",
]


@dataclass(frozen=True)
class BlockSamplingEstimate:
    """Result of a block-sampling CR estimation."""

    compressor: str
    error_bound: float
    estimated_cr: float
    sampled_fraction: float
    n_blocks: int
    block_size: int
    per_block_crs: Tuple[float, ...]
    #: Fixed per-tile container overhead (bytes) removed from the
    #: extrapolation; 0 when the correction is disabled.
    overhead_bytes_per_block: float = 0.0

    @property
    def cr_std(self) -> float:
        """Dispersion of the per-block compression ratios."""

        return float(np.std(self.per_block_crs)) if self.per_block_crs else float("nan")


def measure_fixed_overhead(compressor, block_size: int) -> int:
    """Fixed container overhead of one ``block_size`` tile, in bytes.

    A constant tile carries no information beyond its header: predictors
    reduce it to an all-zero code stream, so its compressed size is the
    per-tile cost the estimator would otherwise multiply by the sample
    count.
    """

    tile = np.zeros((block_size, block_size), dtype=np.float64)
    return compressor.compress(tile).compressed_nbytes


def estimate_cr_by_sampling(
    field: np.ndarray,
    compressor: str,
    error_bound: float,
    *,
    n_blocks: int = 16,
    block_size: int = 32,
    seed: SeedLike = None,
    overhead_correction: bool = True,
    **compressor_options,
) -> BlockSamplingEstimate:
    """Estimate the compression ratio of ``field`` from sampled blocks.

    The estimator compresses ``n_blocks`` randomly positioned
    ``block_size x block_size`` tiles and uses the ratio of total original
    bytes to total compressed bytes of the sample as the estimate (the
    aggregate form is less noisy than averaging per-block CRs).  With
    ``overhead_correction`` (default) the compressor's fixed per-tile
    container overhead is subtracted from every sampled tile and charged
    once for the whole field, removing the per-compressor header bias of
    the naive extrapolation.
    """

    field = ensure_2d(field, "field")
    ensure_positive(error_bound, "error_bound")
    ensure_positive(n_blocks, "n_blocks")
    ensure_positive(block_size, "block_size")
    rows, cols = field.shape
    if rows < block_size or cols < block_size:
        raise ValueError(
            f"field shape {field.shape} is smaller than the sampling block size {block_size}"
        )

    rng = make_rng(seed)
    codec = make_compressor(compressor, error_bound, **compressor_options)

    def sample(count: int, size: int):
        original = 0
        compressed = 0
        ratios: list = []
        for _ in range(count):
            i = int(rng.integers(0, rows - size + 1))
            j = int(rng.integers(0, cols - size + 1))
            tile = np.ascontiguousarray(field[i : i + size, j : j + size])
            result = codec.compress(tile)
            original += result.original_nbytes
            compressed += result.compressed_nbytes
            ratios.append(result.compression_ratio)
        return original, compressed, ratios

    original_bytes, compressed_bytes, per_block = sample(int(n_blocks), block_size)
    total_sampled_bytes = original_bytes

    overhead = 0.0
    estimated = (
        original_bytes / compressed_bytes if compressed_bytes else float("inf")
    )
    double = 2 * block_size
    if overhead_correction and compressed_bytes:
        rate = compressed_bytes / original_bytes
        if rows >= double and cols >= double:
            # Two-scale Richardson extrapolation of the per-byte rate: the
            # per-tile overhead amortises with tile area, so sampling a
            # second, double-size scale isolates the asymptotic body rate.
            n2 = max(2, int(n_blocks) // 2)
            original2, compressed2, _ = sample(n2, double)
            total_sampled_bytes += original2
            rate2 = compressed2 / original2 if original2 else rate
            # Clamp: sampling noise can push the extrapolation through
            # zero for trivially compressible data.
            rate_inf = max((4.0 * rate2 - rate) / 3.0, 0.25 * rate2)
            estimated = 1.0 / rate_inf
            tile_bytes = block_size * block_size * field.dtype.itemsize
            overhead = max((rate - rate_inf) * tile_bytes, 0.0)
        else:
            # Field too small for the second scale: subtract the fixed
            # header cost measured on a constant tile, charged once.
            overhead = float(measure_fixed_overhead(codec, int(block_size)))
            field_bytes = rows * cols * field.dtype.itemsize
            body = max(compressed_bytes - n_blocks * overhead, 0.0)
            projected = body * (field_bytes / original_bytes) + overhead
            estimated = field_bytes / projected if projected > 0 else float("inf")

    # Count every compressed sample (both scales), not just the first pass,
    # so the reported cost of the estimate is honest.
    sampled_fraction = total_sampled_bytes / float(
        rows * cols * field.dtype.itemsize
    )
    return BlockSamplingEstimate(
        compressor=compressor,
        error_bound=float(error_bound),
        estimated_cr=float(estimated),
        sampled_fraction=float(min(sampled_fraction, 1.0)),
        n_blocks=int(n_blocks),
        block_size=int(block_size),
        per_block_crs=tuple(per_block),
        overhead_bytes_per_block=float(overhead),
    )
