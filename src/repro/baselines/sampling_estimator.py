"""Block-sampling compression-ratio estimation (Lu et al. style).

Lu et al. (IPDPS 2018) estimate the compression ratio of SZ and ZFP by
compressing a small sample of data blocks and extrapolating, relying on
compressor-specific details.  This module implements the generic form of
that idea against our compressors: draw ``n_blocks`` random ``block_size``
tiles from the field, compress each with the target compressor, and
estimate the full-field CR from the sampled compressed sizes.

The estimate deliberately inherits the approach's known weakness — block
headers and the loss of cross-block redundancy bias small-sample estimates
— which is exactly the kind of compressor-specific fragility the paper's
correlation-based direction wants to avoid.  The baseline benchmark
quantifies that bias against the true CR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.compressors.registry import make_compressor
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import ensure_2d, ensure_positive

__all__ = ["BlockSamplingEstimate", "estimate_cr_by_sampling"]


@dataclass(frozen=True)
class BlockSamplingEstimate:
    """Result of a block-sampling CR estimation."""

    compressor: str
    error_bound: float
    estimated_cr: float
    sampled_fraction: float
    n_blocks: int
    block_size: int
    per_block_crs: Tuple[float, ...]

    @property
    def cr_std(self) -> float:
        """Dispersion of the per-block compression ratios."""

        return float(np.std(self.per_block_crs)) if self.per_block_crs else float("nan")


def estimate_cr_by_sampling(
    field: np.ndarray,
    compressor: str,
    error_bound: float,
    *,
    n_blocks: int = 16,
    block_size: int = 32,
    seed: SeedLike = None,
    **compressor_options,
) -> BlockSamplingEstimate:
    """Estimate the compression ratio of ``field`` from sampled blocks.

    The estimator compresses ``n_blocks`` randomly positioned
    ``block_size x block_size`` tiles and uses the ratio of total original
    bytes to total compressed bytes of the sample as the estimate (the
    aggregate form is less noisy than averaging per-block CRs).
    """

    field = ensure_2d(field, "field")
    ensure_positive(error_bound, "error_bound")
    ensure_positive(n_blocks, "n_blocks")
    ensure_positive(block_size, "block_size")
    rows, cols = field.shape
    if rows < block_size or cols < block_size:
        raise ValueError(
            f"field shape {field.shape} is smaller than the sampling block size {block_size}"
        )

    rng = make_rng(seed)
    codec = make_compressor(compressor, error_bound, **compressor_options)

    original_bytes = 0
    compressed_bytes = 0
    per_block: list = []
    for _ in range(int(n_blocks)):
        i = int(rng.integers(0, rows - block_size + 1))
        j = int(rng.integers(0, cols - block_size + 1))
        tile = np.ascontiguousarray(field[i : i + block_size, j : j + block_size])
        compressed = codec.compress(tile)
        original_bytes += compressed.original_nbytes
        compressed_bytes += compressed.compressed_nbytes
        per_block.append(compressed.compression_ratio)

    estimated = original_bytes / compressed_bytes if compressed_bytes else float("inf")
    sampled_fraction = (n_blocks * block_size * block_size) / float(rows * cols)
    return BlockSamplingEstimate(
        compressor=compressor,
        error_bound=float(error_bound),
        estimated_cr=float(estimated),
        sampled_fraction=float(min(sampled_fraction, 1.0)),
        n_blocks=int(n_blocks),
        block_size=int(block_size),
        per_block_crs=tuple(per_block),
    )
