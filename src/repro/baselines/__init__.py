"""Related-work baselines the paper positions itself against.

* :mod:`repro.baselines.sampling_estimator` -- block-sampling estimation of
  the compression ratio (Lu et al., IPDPS 2018): compress a random sample
  of blocks and extrapolate, instead of analysing correlation structure.
* :mod:`repro.baselines.adaptive_selection` -- entropy-driven online
  selection between SZ and ZFP (Tao et al., TPDS 2019): estimate each
  compressor's CR from sampled blocks / quantized entropy and pick the
  winner per field.
* :mod:`repro.baselines.entropy_estimator` -- the classical
  entropy-based compressibility bound applied to error-bounded quantized
  data; the compressor-independent reference point the paper's
  introduction starts from.

These baselines matter for the reproduction because the paper's claim is
*methodological*: correlation statistics are compressor-independent
predictors, unlike the compressor-specific sampling approaches.  The
benchmark ``benchmarks/test_baseline_estimators.py`` compares them.
"""

from repro.baselines.sampling_estimator import BlockSamplingEstimate, estimate_cr_by_sampling
from repro.baselines.adaptive_selection import AdaptiveSelectionResult, select_compressor
from repro.baselines.entropy_estimator import entropy_cr_bound

__all__ = [
    "BlockSamplingEstimate",
    "estimate_cr_by_sampling",
    "AdaptiveSelectionResult",
    "select_compressor",
    "entropy_cr_bound",
]
