"""Online SZ/ZFP selection (Tao et al. style).

Tao et al. (TPDS 2019) switch between SZ and ZFP per field by *estimating*
which compressor will achieve the higher compression ratio, using
block-sampled statistics (Shannon entropy of the quantized representation
for SZ's prediction-based behaviour).  This module implements that
selection loop against our compressors:

1. estimate each candidate's CR with the block-sampling estimator
   (:mod:`repro.baselines.sampling_estimator`);
2. pick the candidate with the larger estimate;
3. optionally verify against the true CRs (used by the baseline benchmark
   to report the selection accuracy / regret).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.baselines.sampling_estimator import estimate_cr_by_sampling
from repro.compressors.registry import make_compressor
from repro.stats.entropy import quantized_entropy
from repro.utils.rng import SeedLike
from repro.utils.validation import ensure_ndim, ensure_positive

__all__ = ["AdaptiveSelectionResult", "select_compressor"]


@dataclass(frozen=True)
class AdaptiveSelectionResult:
    """Outcome of one adaptive selection decision.

    Attributes
    ----------
    selected:
        The compressor chosen from the estimates.
    estimated_crs:
        Per-candidate estimated compression ratios.
    quantized_entropy_bits:
        First-order entropy (bits/value) of the error-bound-quantized
        field, the statistic Tao et al. sample for SZ.
    true_crs:
        Per-candidate measured compression ratios (only when verification
        was requested).
    correct:
        Whether the selection matches the true argmax (None without
        verification).
    regret:
        CR difference between the best candidate and the selected one
        (0 when correct; None without verification).
    """

    selected: str
    estimated_crs: Dict[str, float]
    quantized_entropy_bits: float
    true_crs: Optional[Dict[str, float]] = None
    correct: Optional[bool] = None
    regret: Optional[float] = None


def select_compressor(
    field: np.ndarray,
    error_bound: float,
    *,
    candidates: Sequence[str] = ("sz", "zfp"),
    n_blocks: int = 8,
    # 48 rather than 32: per-container overhead biases 32x32 samples enough
    # to flip close SZ-vs-ZFP calls now that the ZFP container is leaner
    # (sequency-partitioned stream, active-block side channels).
    block_size: int = 48,
    seed: SeedLike = None,
    verify: bool = False,
) -> AdaptiveSelectionResult:
    """Choose the candidate compressor with the larger estimated CR.

    ``field`` may be a 2D plane or a 3D volume (the chunked array store's
    adaptive codec policy runs this loop per chunk in both cases).
    """

    field = ensure_ndim(field, (2, 3), "field")
    ensure_positive(error_bound, "error_bound")
    if not candidates:
        raise ValueError("at least one candidate compressor is required")
    # Fields smaller than the sampling tile are sampled whole rather than
    # rejected (the estimator raises on tiles larger than the field).
    block_size = min(int(block_size), *field.shape)

    estimates: Dict[str, float] = {}
    for name in candidates:
        # The per-compressor overhead correction (the estimator's default)
        # is deliberate here: selection compares estimates *across*
        # compressors, which is exactly where the uncorrected per-tile
        # header bias flipped SZ-vs-ZFP calls.  It costs ~1.5x the sampled
        # bytes of the naive form.
        estimate = estimate_cr_by_sampling(
            field,
            name,
            error_bound,
            n_blocks=n_blocks,
            block_size=block_size,
            seed=seed,
        )
        estimates[name] = estimate.estimated_cr
    selected = max(estimates, key=estimates.get)
    entropy_bits = quantized_entropy(field, error_bound)

    true_crs: Optional[Dict[str, float]] = None
    correct: Optional[bool] = None
    regret: Optional[float] = None
    if verify:
        true_crs = {
            name: make_compressor(name, error_bound).compress(field).compression_ratio
            for name in candidates
        }
        best = max(true_crs, key=true_crs.get)
        correct = selected == best
        regret = float(true_crs[best] - true_crs[selected])

    return AdaptiveSelectionResult(
        selected=selected,
        estimated_crs=estimates,
        quantized_entropy_bits=float(entropy_bits),
        true_crs=true_crs,
        correct=correct,
        regret=regret,
    )
