"""Entropy-based compressibility bound.

The classical information-theoretic reference point: after error-bounded
uniform quantization, the first-order Shannon entropy of the codes lower
bounds the bits per value any entropy coder can reach on that symbol
stream, which upper bounds the achievable compression ratio of a
"quantize + entropy-code" scheme that ignores spatial correlation.

Comparing this bound with what SZ/ZFP actually achieve isolates exactly the
contribution the paper studies: how much *extra* compressibility the
spatial correlation structure provides (through prediction / transform
decorrelation) beyond the marginal value distribution.
"""

from __future__ import annotations

import numpy as np

from repro.stats.entropy import quantized_entropy
from repro.utils.validation import ensure_2d, ensure_positive

__all__ = ["entropy_cr_bound"]


def entropy_cr_bound(
    field: np.ndarray, error_bound: float, *, original_bits_per_value: int = 64
) -> float:
    """Compression-ratio bound implied by the quantized first-order entropy.

    Parameters
    ----------
    field:
        2D field.
    error_bound:
        Absolute error bound used for the uniform quantization.
    original_bits_per_value:
        Bits per value of the uncompressed representation (64 for the
        float64 fields used throughout the study, 32 for float32 data).

    Returns
    -------
    float
        ``original_bits_per_value / max(entropy, epsilon)`` — the CR a
        correlation-blind quantize-and-entropy-code scheme could reach at
        best.  ``inf`` is avoided by flooring the entropy at a small
        epsilon (a constant field would otherwise divide by zero).
    """

    field = ensure_2d(field, "field")
    ensure_positive(error_bound, "error_bound")
    ensure_positive(original_bits_per_value, "original_bits_per_value")
    entropy_bits = quantized_entropy(field, error_bound)
    return float(original_bits_per_value / max(entropy_bits, 1e-6))
