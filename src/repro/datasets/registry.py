"""Named dataset registry used by the experiment pipeline and examples.

A *dataset factory* is a callable ``(seed) -> list[(label, 2D field)]``.
Registering factories under string keys lets the benchmark harness and the
command-line examples refer to workloads by name ("gaussian-single",
"gaussian-multi", "miranda") the same way libpressio-based scripts refer to
datasets by path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.datasets.gaussian import generate_gaussian_field, generate_multi_range_field
from repro.datasets.miranda import MirandaConfig, MirandaSurrogate
from repro.datasets.nonstationary import (
    blob_range_map,
    generate_nonstationary_field,
    gradient_range_map,
    split_range_map,
)
from repro.utils.rng import SeedLike, derive_seeds

__all__ = ["DatasetRegistry", "default_registry"]

DatasetFactory = Callable[[SeedLike], List[Tuple[str, np.ndarray]]]


class DatasetRegistry:
    """String-keyed registry of dataset factories."""

    def __init__(self) -> None:
        self._factories: Dict[str, DatasetFactory] = {}

    def register(self, name: str, factory: DatasetFactory, *, overwrite: bool = False) -> None:
        """Register ``factory`` under ``name``."""

        if not name:
            raise ValueError("dataset name must be non-empty")
        if name in self._factories and not overwrite:
            raise KeyError(f"dataset {name!r} is already registered")
        self._factories[name] = factory

    def names(self) -> List[str]:
        """Sorted list of registered dataset names."""

        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def create(self, name: str, seed: SeedLike = None) -> List[Tuple[str, np.ndarray]]:
        """Instantiate the named dataset; returns ``(label, field)`` pairs."""

        try:
            factory = self._factories[name]
        except KeyError as exc:
            raise KeyError(
                f"unknown dataset {name!r}; known datasets: {self.names()}"
            ) from exc
        return factory(seed)


def _gaussian_single_factory(
    shape: Tuple[int, int] = (128, 128),
    ranges: Sequence[float] = (2.0, 4.0, 8.0, 16.0, 32.0, 48.0),
) -> DatasetFactory:
    def factory(seed: SeedLike = None) -> List[Tuple[str, np.ndarray]]:
        seeds = derive_seeds(seed, len(ranges))
        return [
            (f"gaussian-single-a{r:g}", generate_gaussian_field(shape, r, seed=s))
            for r, s in zip(ranges, seeds)
        ]

    return factory


def _gaussian_multi_factory(
    shape: Tuple[int, int] = (128, 128),
    range_pairs: Sequence[Tuple[float, float]] = (
        (2.0, 8.0),
        (2.0, 24.0),
        (4.0, 16.0),
        (4.0, 48.0),
        (8.0, 32.0),
        (16.0, 48.0),
    ),
) -> DatasetFactory:
    def factory(seed: SeedLike = None) -> List[Tuple[str, np.ndarray]]:
        seeds = derive_seeds(seed, len(range_pairs))
        return [
            (
                f"gaussian-multi-a{r1:g}-{r2:g}",
                generate_multi_range_field(shape, (r1, r2), seed=s),
            )
            for (r1, r2), s in zip(range_pairs, seeds)
        ]

    return factory


def _nonstationary_factory(shape: Tuple[int, int] = (128, 128)) -> DatasetFactory:
    """Non-stationary fields (paper future-work item ii): spatially varying range."""

    def factory(seed: SeedLike = None) -> List[Tuple[str, np.ndarray]]:
        specs = [
            ("gradient-2-16", gradient_range_map(shape, 2.0, 16.0)),
            ("gradient-2-32", gradient_range_map(shape, 2.0, 32.0)),
            ("gradient-4-24", gradient_range_map(shape, 4.0, 24.0, axis=1)),
            ("blob-3-24", blob_range_map(shape, 3.0, 24.0)),
            ("blob-2-32", blob_range_map(shape, 2.0, 32.0, blob_fraction=0.25)),
            ("split-3-24", split_range_map(shape, 3.0, 24.0)),
        ]
        seeds = derive_seeds(seed, len(specs))
        return [
            (
                f"gaussian-nonstationary-{name}",
                generate_nonstationary_field(range_map, seed=s),
            )
            for (name, range_map), s in zip(specs, seeds)
        ]

    return factory


def _miranda_factory(
    shape: Tuple[int, int, int] = (32, 128, 128), slice_count: int = 8
) -> DatasetFactory:
    def factory(seed: SeedLike = None) -> List[Tuple[str, np.ndarray]]:
        surrogate = MirandaSurrogate(MirandaConfig(shape=shape))
        slices = surrogate.generate_slices(seed=seed, axis=0, count=slice_count)
        return [(f"miranda-velocityx-z{idx}", plane) for idx, plane in slices]

    return factory


def _miranda_volume_factory(
    shape: Tuple[int, int, int] = (64, 64, 64)
) -> DatasetFactory:
    """The Miranda workload as a native 3D volume (no slicing).

    The returned field is 3D; the experiment pipeline routes it through
    the tiled volume compression path (:mod:`repro.volumes.pipeline`).
    """

    def factory(seed: SeedLike = None) -> List[Tuple[str, np.ndarray]]:
        surrogate = MirandaSurrogate(MirandaConfig(shape=shape))
        return [("miranda-velocityx-volume", surrogate.generate(seed))]

    return factory


def default_registry(
    gaussian_shape: Tuple[int, int] = (128, 128),
    miranda_shape: Tuple[int, int, int] = (32, 128, 128),
    miranda_volume_shape: Tuple[int, int, int] = (64, 64, 64),
) -> DatasetRegistry:
    """Registry pre-populated with the paper's workloads.

    ``gaussian-single``, ``gaussian-multi`` and ``miranda`` are the paper's
    three evaluation datasets; ``gaussian-nonstationary`` adds the
    future-work item (ii) workload (spatially varying correlation range),
    and ``miranda-volume`` exposes the Miranda surrogate as a native 3D
    volume for the volumetric compression path.
    """

    registry = DatasetRegistry()
    registry.register("gaussian-single", _gaussian_single_factory(shape=gaussian_shape))
    registry.register("gaussian-multi", _gaussian_multi_factory(shape=gaussian_shape))
    registry.register(
        "gaussian-nonstationary", _nonstationary_factory(shape=gaussian_shape)
    )
    registry.register("miranda", _miranda_factory(shape=miranda_shape))
    registry.register(
        "miranda-volume", _miranda_volume_factory(shape=miranda_volume_shape)
    )
    return registry
