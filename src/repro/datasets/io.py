"""Dataset I/O helpers.

SDRBench distributes fields as headerless little-endian ``float32``/
``float64`` binaries with the shape documented externally; these helpers
read and write that layout (so a user who *does* have the original Miranda
file can drop it in) as well as ``.npy`` files for internal use.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence, Union

import numpy as np

__all__ = ["save_raw", "load_raw", "save_field", "load_field"]

PathLike = Union[str, os.PathLike]


def save_raw(path: PathLike, field: np.ndarray, dtype: str = "float32") -> None:
    """Write ``field`` as a headerless little-endian binary (SDRBench layout)."""

    arr = np.asarray(field)
    np_dtype = np.dtype(dtype).newbyteorder("<")
    arr.astype(np_dtype).tofile(str(path))


def load_raw(
    path: PathLike, shape: Sequence[int], dtype: str = "float32"
) -> np.ndarray:
    """Read a headerless little-endian binary of the given ``shape``.

    Raises ``ValueError`` when the file size does not match the expected
    element count — the most common mistake when pointing the loader at an
    SDRBench file with the wrong shape or precision.
    """

    np_dtype = np.dtype(dtype).newbyteorder("<")
    expected = int(np.prod(shape))
    data = np.fromfile(str(path), dtype=np_dtype)
    if data.size != expected:
        raise ValueError(
            f"file {path} holds {data.size} elements of {dtype}, expected "
            f"{expected} for shape {tuple(shape)}"
        )
    return data.reshape(tuple(shape)).astype(np.float64)


def save_field(path: PathLike, field: np.ndarray) -> None:
    """Save a field as ``.npy`` (shape and dtype preserved)."""

    path = Path(path)
    if path.suffix != ".npy":
        path = path.with_suffix(".npy")
    np.save(path, np.asarray(field))


def load_field(path: PathLike) -> np.ndarray:
    """Load a ``.npy`` field saved by :func:`save_field`."""

    return np.load(str(path))
