"""Non-stationary Gaussian fields with spatially varying correlation range.

The paper's future-work item (ii) asks for "more complex synthetic
multiscale 2D Gaussian fields".  The multi-range fields of the main study
mix two correlation ranges *uniformly over space*; real application data
(and the Miranda snapshot) instead exhibit *spatially varying* correlation
— smooth regions next to turbulent ones.  This module provides that
controlled non-stationary workload:

* a **range map** assigns a target correlation range to every grid point
  (linear gradients, smooth blobs, or half-and-half splits);
* the field is synthesised by blending a small bank of stationary
  squared-exponential fields (shared white noise, different ranges) with
  weights derived from the local target range, so the local correlation
  scale tracks the map while the marginal variance stays ~1.

These fields are exactly the case where the paper's *global* variogram
range is a poor summary and the *local* statistics (std of windowed ranges,
windowed SVD levels) are informative — the benchmark
``benchmarks/test_extension_nonstationary.py`` quantifies that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.datasets.covariance import SquaredExponentialCovariance
from repro.datasets.gaussian import GaussianFieldConfig, GaussianRandomFieldGenerator
from repro.utils.rng import SeedLike, derive_seeds
from repro.utils.validation import ensure_positive

__all__ = [
    "RangeMap",
    "gradient_range_map",
    "blob_range_map",
    "split_range_map",
    "NonstationaryFieldConfig",
    "generate_nonstationary_field",
]

#: A range map is simply a 2D array of positive target correlation ranges.
RangeMap = np.ndarray


def gradient_range_map(
    shape: Tuple[int, int], min_range: float = 2.0, max_range: float = 32.0, axis: int = 0
) -> RangeMap:
    """Correlation range increasing linearly along one axis."""

    ensure_positive(min_range, "min_range")
    ensure_positive(max_range, "max_range")
    if axis not in (0, 1):
        raise ValueError("axis must be 0 or 1")
    rows, cols = shape
    length = rows if axis == 0 else cols
    ramp = np.linspace(min_range, max_range, length)
    if axis == 0:
        return np.repeat(ramp[:, None], cols, axis=1)
    return np.repeat(ramp[None, :], rows, axis=0)


def blob_range_map(
    shape: Tuple[int, int],
    background_range: float = 3.0,
    blob_range: float = 24.0,
    blob_fraction: float = 0.35,
) -> RangeMap:
    """A smooth circular region of long-range correlation in a rough background."""

    ensure_positive(background_range, "background_range")
    ensure_positive(blob_range, "blob_range")
    if not 0 < blob_fraction < 1:
        raise ValueError("blob_fraction must be in (0, 1)")
    rows, cols = shape
    ii, jj = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    centre = (rows / 2.0, cols / 2.0)
    radius = np.sqrt(blob_fraction * rows * cols / np.pi)
    distance = np.sqrt((ii - centre[0]) ** 2 + (jj - centre[1]) ** 2)
    # Smooth transition over ~radius/4 so the map itself is not a hard edge.
    transition = 1.0 / (1.0 + np.exp((distance - radius) / (radius / 4.0 + 1e-9)))
    return background_range + (blob_range - background_range) * transition


def split_range_map(
    shape: Tuple[int, int], left_range: float = 3.0, right_range: float = 24.0
) -> RangeMap:
    """Hard half-and-half split of the domain between two correlation ranges."""

    ensure_positive(left_range, "left_range")
    ensure_positive(right_range, "right_range")
    rows, cols = shape
    out = np.full((rows, cols), left_range, dtype=np.float64)
    out[:, cols // 2 :] = right_range
    return out


@dataclass(frozen=True)
class NonstationaryFieldConfig:
    """Configuration of a non-stationary Gaussian field sample.

    Attributes
    ----------
    shape:
        Grid shape.
    component_ranges:
        Correlation ranges of the stationary component fields that are
        blended.  More components give a finer approximation of the target
        range map at a higher generation cost.
    variance:
        Marginal variance of every component (and, approximately, of the
        blended field).
    """

    shape: Tuple[int, int] = (128, 128)
    component_ranges: Sequence[float] = (2.0, 4.0, 8.0, 16.0, 32.0)
    variance: float = 1.0

    def __post_init__(self) -> None:
        if len(self.shape) != 2:
            raise ValueError(f"shape must be 2D, got {self.shape}")
        if len(self.component_ranges) < 2:
            raise ValueError("need at least two component ranges to blend")
        for value in self.component_ranges:
            ensure_positive(value, "component range")
        ensure_positive(self.variance, "variance")


def _blending_weights(range_map: RangeMap, component_ranges: np.ndarray) -> np.ndarray:
    """Per-point convex weights over the component fields.

    The target range is matched in log space with a triangular (piecewise
    linear) kernel over the component ranges, so every point blends at most
    the two components bracketing its target range.
    """

    log_targets = np.log(range_map)[..., None]
    log_components = np.log(component_ranges)[None, None, :]
    spacing = np.diff(np.log(component_ranges)).mean()
    weights = np.clip(1.0 - np.abs(log_targets - log_components) / spacing, 0.0, None)
    total = weights.sum(axis=-1, keepdims=True)
    # Targets outside the component span fall back to the nearest component.
    fallback = np.zeros_like(weights)
    nearest = np.argmin(np.abs(log_targets - log_components), axis=-1)
    rows, cols = range_map.shape
    fallback[np.arange(rows)[:, None], np.arange(cols)[None, :], nearest] = 1.0
    weights = np.where(total > 0, weights / np.where(total > 0, total, 1.0), fallback)
    return weights


def generate_nonstationary_field(
    range_map: RangeMap,
    *,
    config: NonstationaryFieldConfig | None = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Sample a Gaussian field whose local correlation range follows ``range_map``.

    All component fields are generated from *independent* seeds derived
    from ``seed`` (so the result is reproducible) and blended point-wise
    with convex weights; the blend of unit-variance components with convex
    weights has variance <= 1, and the output is rescaled back to the
    configured marginal variance.
    """

    range_map = np.asarray(range_map, dtype=np.float64)
    if range_map.ndim != 2:
        raise ValueError(f"range_map must be 2D, got shape {range_map.shape}")
    if np.any(~np.isfinite(range_map)) or np.any(range_map <= 0):
        raise ValueError("range_map must contain positive finite correlation ranges")
    config = config or NonstationaryFieldConfig(shape=range_map.shape)
    if tuple(config.shape) != range_map.shape:
        config = NonstationaryFieldConfig(
            shape=range_map.shape,
            component_ranges=config.component_ranges,
            variance=config.variance,
        )

    component_ranges = np.asarray(sorted(config.component_ranges), dtype=np.float64)
    seeds = derive_seeds(seed, len(component_ranges))
    components = np.empty((range_map.shape[0], range_map.shape[1], component_ranges.size))
    for index, (component_range, component_seed) in enumerate(zip(component_ranges, seeds)):
        generator = GaussianRandomFieldGenerator(
            GaussianFieldConfig(
                shape=range_map.shape,
                covariance=SquaredExponentialCovariance(
                    range=float(component_range), variance=config.variance
                ),
            )
        )
        components[:, :, index] = generator.sample(component_seed)

    weights = _blending_weights(range_map, component_ranges)
    blended = (weights * components).sum(axis=-1)
    # Restore the marginal variance lost by convex blending of independent
    # components: Var(sum w_i X_i) = sum w_i^2 for unit-variance X_i.
    effective = np.sqrt((weights**2).sum(axis=-1))
    effective = np.where(effective > 0, effective, 1.0)
    return blended / effective * np.sqrt(config.variance)
