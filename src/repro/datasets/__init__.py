"""Dataset substrate: synthetic fields with controllable correlation structure.

The paper evaluates on two kinds of 2D data:

* **Gaussian random fields** with a squared-exponential correlation model,
  either with a single correlation range or a mixture of two ranges
  (:mod:`repro.datasets.gaussian`).
* **Miranda** hydrodynamics snapshots (velocityx), sliced from a 3D volume
  into 2D planes.  The original SDRBench file is not redistributable here,
  so :mod:`repro.datasets.miranda` synthesises a turbulence-like volume with
  comparable multi-scale correlation structure (see DESIGN.md for the
  substitution rationale).

Supporting modules provide parametric covariance functions
(:mod:`repro.datasets.covariance`), 3D-to-2D slicing helpers
(:mod:`repro.datasets.slicing`), raw binary / ``.npy`` I/O compatible with
the SDRBench layout (:mod:`repro.datasets.io`) and a string-keyed registry
used by the experiment pipeline (:mod:`repro.datasets.registry`).
"""

from repro.datasets.covariance import (
    CovarianceModel,
    ExponentialCovariance,
    MaternCovariance,
    MixtureCovariance,
    SphericalCovariance,
    SquaredExponentialCovariance,
)
from repro.datasets.gaussian import (
    GaussianFieldConfig,
    GaussianRandomFieldGenerator,
    generate_gaussian_field,
    generate_multi_range_field,
)
from repro.datasets.miranda import MirandaConfig, MirandaSurrogate, generate_miranda_like_volume
from repro.datasets.nonstationary import (
    NonstationaryFieldConfig,
    blob_range_map,
    generate_nonstationary_field,
    gradient_range_map,
    split_range_map,
)
from repro.datasets.slicing import slice_volume, slice_indices
from repro.datasets.io import load_field, save_field, load_raw, save_raw
from repro.datasets.registry import DatasetRegistry, default_registry

__all__ = [
    "CovarianceModel",
    "SquaredExponentialCovariance",
    "ExponentialCovariance",
    "MaternCovariance",
    "SphericalCovariance",
    "MixtureCovariance",
    "GaussianFieldConfig",
    "GaussianRandomFieldGenerator",
    "generate_gaussian_field",
    "generate_multi_range_field",
    "MirandaConfig",
    "MirandaSurrogate",
    "generate_miranda_like_volume",
    "NonstationaryFieldConfig",
    "generate_nonstationary_field",
    "gradient_range_map",
    "blob_range_map",
    "split_range_map",
    "slice_volume",
    "slice_indices",
    "load_field",
    "save_field",
    "load_raw",
    "save_raw",
    "DatasetRegistry",
    "default_registry",
]
