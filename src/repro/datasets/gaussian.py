"""Stationary 2D Gaussian random field generation.

The paper's synthetic datasets are zero-mean Gaussian fields on a regular
grid with squared-exponential correlation (Eq. 2), generated for a sweep of
correlation ranges, in two flavours:

* *single-range* fields — one squared-exponential component, and
* *multi-range* fields — two components with distinct ranges contributing
  equally to the total field.

Sampling method
---------------
The default sampler uses **circulant embedding**: the target covariance is
embedded in a doubly periodic covariance on an enlarged grid whose
covariance matrix is block-circulant and therefore diagonalised by the 2D
FFT.  Sampling is then two FFTs — O(N log N) — and *exact* when the
embedding is positive semi-definite (we clip tiny negative eigenvalues that
arise from floating point noise, and raise if the energy clipped is
non-negligible unless ``allow_approximate`` is set).  A dense Cholesky
sampler is provided for small grids and as a cross-check in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.datasets.covariance import (
    CovarianceModel,
    MixtureCovariance,
    SquaredExponentialCovariance,
)
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import ensure_positive

__all__ = [
    "GaussianFieldConfig",
    "GaussianRandomFieldGenerator",
    "generate_gaussian_field",
    "generate_multi_range_field",
]


@dataclass(frozen=True)
class GaussianFieldConfig:
    """Configuration of a Gaussian random field sample.

    Attributes
    ----------
    shape:
        Grid shape ``(rows, cols)``.  The paper uses 1028x1028; the default
        here is smaller because the reproduction's compressors are pure
        Python, but every size is supported.
    covariance:
        The isotropic covariance model.
    mean:
        Constant mean added to the zero-mean sample (paper uses 0).
    allow_approximate:
        Accept a slightly approximate sample when the circulant embedding is
        not positive semi-definite (negative eigenvalues are clipped).  For
        the squared-exponential family on reasonably sized grids the
        embedding is effectively PSD, so the default is strict.
    """

    shape: Tuple[int, int] = (256, 256)
    covariance: CovarianceModel = field(default_factory=SquaredExponentialCovariance)
    mean: float = 0.0
    allow_approximate: bool = True

    def __post_init__(self) -> None:
        if len(self.shape) != 2:
            raise ValueError(f"shape must be 2D, got {self.shape}")
        ensure_positive(self.shape[0], "shape[0]")
        ensure_positive(self.shape[1], "shape[1]")


class GaussianRandomFieldGenerator:
    """Sampler of stationary Gaussian random fields on a 2D grid."""

    def __init__(self, config: GaussianFieldConfig) -> None:
        self.config = config
        self._spectrum_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # circulant embedding sampler (default)
    # ------------------------------------------------------------------
    def _embedding_spectrum(self) -> np.ndarray:
        """Eigenvalues (non-negative) of the periodic embedding covariance."""

        if self._spectrum_cache is not None:
            return self._spectrum_cache

        rows, cols = self.config.shape
        # Embed in a 2x grid (doubly periodic).  Minimum embedding size is
        # (2*rows - 2, 2*cols - 2) but powers-of-two-friendly 2N keeps the
        # FFT fast and the wrap-around distance symmetric.
        erows, ecols = 2 * rows, 2 * cols
        # Periodic (wrapped) distances on the embedding torus.
        di = np.minimum(np.arange(erows), erows - np.arange(erows)).astype(np.float64)
        dj = np.minimum(np.arange(ecols), ecols - np.arange(ecols)).astype(np.float64)
        dist = np.sqrt(di[:, None] ** 2 + dj[None, :] ** 2)
        cov = self.config.covariance(dist)
        spectrum = np.fft.fft2(cov).real
        min_eig = spectrum.min()
        if min_eig < 0:
            clipped_energy = float(-spectrum[spectrum < 0].sum())
            total_energy = float(np.abs(spectrum).sum())
            if not self.config.allow_approximate and clipped_energy > 1e-8 * total_energy:
                raise ValueError(
                    "circulant embedding is not positive semi-definite "
                    f"(clipped {clipped_energy:.3e} of {total_energy:.3e}); "
                    "set allow_approximate=True or use sample_cholesky()"
                )
            spectrum = np.clip(spectrum, 0.0, None)
        self._spectrum_cache = spectrum
        return spectrum

    def sample(self, seed: SeedLike = None) -> np.ndarray:
        """Draw one field realisation with the circulant-embedding sampler."""

        rng = make_rng(seed)
        rows, cols = self.config.shape
        spectrum = self._embedding_spectrum()
        erows, ecols = spectrum.shape
        # Complex white noise; the real and imaginary parts of the inverse
        # transform give two independent realisations — we use the real part.
        noise = rng.normal(size=(erows, ecols)) + 1j * rng.normal(size=(erows, ecols))
        coeff = np.sqrt(spectrum / (erows * ecols))
        sample = np.fft.fft2(coeff * noise)
        field_2d = sample.real[:rows, :cols]
        return field_2d + self.config.mean

    # ------------------------------------------------------------------
    # dense Cholesky sampler (reference implementation, small grids only)
    # ------------------------------------------------------------------
    def sample_cholesky(self, seed: SeedLike = None, jitter: float = 1e-10) -> np.ndarray:
        """Draw one realisation by dense Cholesky factorisation.

        Complexity is O((rows*cols)^3); intended for grids up to ~64x64 and
        used in the tests as a ground-truth cross-check of the FFT sampler.
        """

        rows, cols = self.config.shape
        n = rows * cols
        if n > 64 * 64:
            raise ValueError(
                f"sample_cholesky is limited to 4096 grid points, got {n}; "
                "use sample() for larger grids"
            )
        rng = make_rng(seed)
        ii, jj = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
        coords = np.column_stack([ii.ravel(), jj.ravel()]).astype(np.float64)
        diff = coords[:, None, :] - coords[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=-1))
        cov = self.config.covariance(dist)
        cov[np.diag_indices_from(cov)] += jitter
        chol = np.linalg.cholesky(cov)
        z = rng.normal(size=n)
        return (chol @ z).reshape(rows, cols) + self.config.mean

    def sample_many(self, count: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``count`` independent realisations, shape ``(count, rows, cols)``."""

        if count < 0:
            raise ValueError("count must be >= 0")
        rng = make_rng(seed)
        rows, cols = self.config.shape
        out = np.empty((count, rows, cols), dtype=np.float64)
        for k in range(count):
            out[k] = self.sample(rng)
        return out


def generate_gaussian_field(
    shape: Tuple[int, int] = (256, 256),
    correlation_range: float = 10.0,
    variance: float = 1.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Convenience wrapper: one single-range squared-exponential field.

    This mirrors the paper's "single correlation range" synthetic dataset.
    """

    cov = SquaredExponentialCovariance(range=correlation_range, variance=variance)
    generator = GaussianRandomFieldGenerator(GaussianFieldConfig(shape=shape, covariance=cov))
    return generator.sample(seed)


def generate_multi_range_field(
    shape: Tuple[int, int] = (256, 256),
    correlation_ranges: Sequence[float] = (5.0, 40.0),
    variance: float = 1.0,
    weights: Sequence[float] | None = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """One multi-range field: mixture of squared-exponential components.

    With the default equal weights this matches the paper's construction of
    "Gaussian fields with two distinct correlation ranges contributing
    equally to the total field".
    """

    if len(correlation_ranges) < 2:
        raise ValueError("multi-range fields need at least two correlation ranges")
    components = [
        SquaredExponentialCovariance(range=r, variance=variance) for r in correlation_ranges
    ]
    cov = MixtureCovariance(components, weights=weights)
    generator = GaussianRandomFieldGenerator(GaussianFieldConfig(shape=shape, covariance=cov))
    return generator.sample(seed)
