"""Synthetic surrogate for the Miranda hydrodynamics dataset.

The paper's application dataset is a single temporal snapshot of the
``velocityx`` variable from the Miranda large-turbulence code (SDRBench,
256x384x384), sliced along the first dimension into 2D planes.  The raw
file is not redistributable inside this repository, so this module builds a
**synthetic volume with the statistical properties the paper's analysis
depends on**:

* multiple correlation ranges coexisting in one field (large-scale shear +
  mid-scale turbulent eddies + small-scale fluctuations),
* spatial heterogeneity / non-stationarity (a mixing-layer region whose
  turbulence intensity differs from the quiescent far field), and
* smooth variation across the slicing axis so different slices have
  different global/local variogram statistics, producing the spread of
  x-values seen in Figs. 4 and 7.

Construction (per DESIGN.md substitution table):

1. a Kolmogorov-like isotropic turbulent velocity component is synthesised
   spectrally in 3D with an energy spectrum ``E(k) ~ k^-5/3`` band-limited
   between configurable wavenumbers;
2. a Rayleigh-Taylor-style mixing layer modulates the turbulence amplitude
   through a smooth (tanh) envelope centred mid-volume, with a sinusoidally
   perturbed interface so the envelope varies along the slicing axis;
3. a large-scale laminar shear profile is added as the mean flow.

The result is deterministic given a seed and reproduces the qualitative
behaviour required by the paper's evaluation: slices near the mixing layer
have short effective correlation ranges and high local heterogeneity, while
far-field slices are smooth and highly compressible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import ensure_positive

__all__ = ["MirandaConfig", "MirandaSurrogate", "generate_miranda_like_volume"]


@dataclass(frozen=True)
class MirandaConfig:
    """Configuration of the Miranda-like synthetic volume.

    Attributes
    ----------
    shape:
        Volume shape ``(nz, ny, nx)``; the paper's file is (256, 384, 384).
        The default is smaller so that a full sweep stays laptop-friendly.
    spectral_slope:
        Exponent of the isotropic energy spectrum (Kolmogorov: -5/3 in the
        inertial range of E(k); the synthesis uses the corresponding 3D
        amplitude scaling).
    k_min, k_max:
        Band limits (in cycles per box) of the turbulent component.
    mixing_layer_width:
        Width (fraction of nz) of the tanh envelope of turbulence intensity.
    interface_amplitude:
        Amplitude (fraction of nz) of the sinusoidal perturbation of the
        mixing-layer centre, which makes slices differ from each other.
    shear_amplitude:
        Amplitude of the large-scale mean shear profile.
    turbulence_amplitude:
        RMS amplitude of the turbulent component inside the mixing layer.
    background_turbulence:
        Residual turbulence fraction outside the mixing layer.
    """

    shape: Tuple[int, int, int] = (64, 192, 192)
    spectral_slope: float = -5.0 / 3.0
    k_min: float = 2.0
    k_max: float = 48.0
    mixing_layer_width: float = 0.25
    interface_amplitude: float = 0.15
    shear_amplitude: float = 1.0
    turbulence_amplitude: float = 0.35
    background_turbulence: float = 0.05

    def __post_init__(self) -> None:
        if len(self.shape) != 3:
            raise ValueError(f"shape must be 3D, got {self.shape}")
        for i, s in enumerate(self.shape):
            ensure_positive(s, f"shape[{i}]")
        ensure_positive(self.k_min, "k_min")
        ensure_positive(self.k_max, "k_max")
        if self.k_max <= self.k_min:
            raise ValueError("k_max must exceed k_min")
        ensure_positive(self.mixing_layer_width, "mixing_layer_width")
        ensure_positive(self.turbulence_amplitude, "turbulence_amplitude")
        if not 0 <= self.background_turbulence <= 1:
            raise ValueError("background_turbulence must be in [0, 1]")


class MirandaSurrogate:
    """Generator of Miranda-like synthetic velocity volumes."""

    def __init__(self, config: MirandaConfig | None = None) -> None:
        self.config = config or MirandaConfig()

    # ------------------------------------------------------------------
    def _spectral_turbulence(self, rng: np.random.Generator) -> np.ndarray:
        """Band-limited random field with a power-law energy spectrum."""

        nz, ny, nx = self.config.shape
        kz = np.fft.fftfreq(nz) * nz
        ky = np.fft.fftfreq(ny) * ny
        kx = np.fft.rfftfreq(nx) * nx
        kk = np.sqrt(
            kz[:, None, None] ** 2 + ky[None, :, None] ** 2 + kx[None, None, :] ** 2
        )
        amplitude = np.zeros_like(kk)
        band = (kk >= self.config.k_min) & (kk <= self.config.k_max)
        # E(k) ~ k^slope distributed over shells of area ~ k^2 implies a
        # modal amplitude ~ sqrt(E(k) / k^2) = k^{(slope-2)/2}.
        modal_exponent = (self.config.spectral_slope - 2.0) / 2.0
        amplitude[band] = kk[band] ** modal_exponent
        phases = rng.normal(size=kk.shape) + 1j * rng.normal(size=kk.shape)
        spectrum = amplitude * phases
        field = np.fft.irfftn(spectrum, s=self.config.shape, axes=(0, 1, 2))
        std = field.std()
        if std > 0:
            field = field / std
        return field

    def _mixing_layer_envelope(self) -> np.ndarray:
        """Smooth tanh envelope of turbulence intensity with a wavy interface."""

        nz, ny, nx = self.config.shape
        z = np.linspace(-1.0, 1.0, nz)[:, None, None]
        y = np.linspace(0.0, 2.0 * np.pi, ny)[None, :, None]
        x = np.linspace(0.0, 2.0 * np.pi, nx)[None, None, :]
        interface = self.config.interface_amplitude * (
            np.sin(2.0 * y) * np.cos(3.0 * x) + 0.5 * np.sin(5.0 * x + 1.0)
        )
        width = self.config.mixing_layer_width
        envelope = 1.0 - np.tanh(np.abs(z - interface) / width) ** 2
        floor = self.config.background_turbulence
        return floor + (1.0 - floor) * envelope

    def _mean_shear(self) -> np.ndarray:
        """Large-scale laminar shear profile (the smooth mean flow)."""

        nz, ny, nx = self.config.shape
        z = np.linspace(-1.0, 1.0, nz)[:, None, None]
        y = np.linspace(0.0, np.pi, ny)[None, :, None]
        x = np.linspace(0.0, np.pi, nx)[None, None, :]
        profile = np.tanh(2.5 * z) + 0.15 * np.sin(y) * np.sin(x)
        return self.config.shear_amplitude * profile

    # ------------------------------------------------------------------
    def generate(self, seed: SeedLike = None) -> np.ndarray:
        """Generate one ``(nz, ny, nx)`` velocityx-like volume."""

        rng = make_rng(seed)
        turbulence = self._spectral_turbulence(rng)
        envelope = self._mixing_layer_envelope()
        shear = self._mean_shear()
        return shear + self.config.turbulence_amplitude * envelope * turbulence

    def generate_slices(self, seed: SeedLike = None, axis: int = 0, count: int | None = None):
        """Generate the volume and return equally spaced 2D slices along ``axis``.

        This mirrors the paper's procedure of splitting the 3D data into
        separate 2D slices along the first dimension.
        """

        from repro.datasets.slicing import slice_volume

        volume = self.generate(seed)
        return slice_volume(volume, axis=axis, count=count)


def generate_miranda_like_volume(
    shape: Tuple[int, int, int] = (64, 192, 192), seed: SeedLike = None
) -> np.ndarray:
    """Convenience wrapper around :class:`MirandaSurrogate` with defaults."""

    return MirandaSurrogate(MirandaConfig(shape=shape)).generate(seed)
