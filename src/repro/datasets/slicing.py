"""3D-to-2D slicing utilities.

The paper analyses 2D slices taken at equally spaced positions along the
first dimension of the 3D Miranda volume.  These helpers implement that
slicing policy for any axis and also return the slice indices so results
can be labelled by slice position.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["slice_indices", "slice_volume"]


def slice_indices(axis_length: int, count: int | None = None) -> List[int]:
    """Equally spaced slice positions along an axis of length ``axis_length``.

    ``count=None`` returns every index.  Otherwise ``count`` indices are
    chosen evenly (including both ends when possible), matching the paper's
    "equally spaced slices along the first dimension".
    """

    if axis_length <= 0:
        raise ValueError("axis_length must be positive")
    if count is None or count >= axis_length:
        return list(range(axis_length))
    if count <= 0:
        raise ValueError("count must be positive")
    if count == 1:
        return [axis_length // 2]
    positions = np.linspace(0, axis_length - 1, count)
    return sorted(set(int(round(p)) for p in positions))


def slice_volume(
    volume: np.ndarray, axis: int = 0, count: int | None = None
) -> List[Tuple[int, np.ndarray]]:
    """Return ``(index, 2D slice)`` pairs from a 3D volume.

    Slices are copies (C-contiguous) so downstream compressors can treat
    them as independent datasets.
    """

    vol = np.asarray(volume)
    if vol.ndim != 3:
        raise ValueError(f"volume must be 3D, got shape {vol.shape}")
    if not -3 <= axis < 3:
        raise ValueError(f"axis must be in [-3, 3), got {axis}")
    axis = axis % 3
    indices = slice_indices(vol.shape[axis], count)
    slices: List[Tuple[int, np.ndarray]] = []
    for idx in indices:
        plane = np.take(vol, idx, axis=axis)
        slices.append((idx, np.ascontiguousarray(plane)))
    return slices
