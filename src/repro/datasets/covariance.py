"""Parametric spatial covariance models.

The paper's synthetic fields use the squared-exponential (Gaussian)
covariance ``C(h) = sigma^2 * exp(-h^2 / a^2)`` where ``a`` is the
correlation range (paper Eq. 2).  We additionally provide the exponential,
Matern and spherical families — standard geostatistical models — because
they are useful for robustness experiments (how the variogram-range/CR
relationship depends on the correlation family) and for the parametric
variogram fits in :mod:`repro.stats.variogram_models`.

Every model maps an array of distances ``h >= 0`` to covariances and also
exposes its theoretical semi-variogram ``gamma(h) = C(0) - C(h)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.special import gamma as gamma_fn, kv

from repro.utils.validation import ensure_positive

__all__ = [
    "CovarianceModel",
    "SquaredExponentialCovariance",
    "ExponentialCovariance",
    "MaternCovariance",
    "SphericalCovariance",
    "MixtureCovariance",
]


class CovarianceModel(ABC):
    """Isotropic, stationary covariance model ``C(h)``."""

    #: marginal variance (sill); subclasses set this in ``__init__``.
    variance: float

    @abstractmethod
    def __call__(self, distances: np.ndarray) -> np.ndarray:
        """Covariance at the given (non-negative) distances."""

    def semivariogram(self, distances: np.ndarray) -> np.ndarray:
        """Theoretical semi-variogram ``gamma(h) = C(0) - C(h)``."""

        h = np.asarray(distances, dtype=np.float64)
        return self.variance - self(h)

    @property
    @abstractmethod
    def effective_range(self) -> float:
        """Distance at which correlation has essentially vanished.

        Conventions follow standard geostatistics: for models that approach
        the sill only asymptotically (squared-exponential, exponential,
        Matern) this is the distance at which the correlation drops to 5 %.
        """


@dataclass(frozen=True)
class SquaredExponentialCovariance(CovarianceModel):
    """``C(h) = variance * exp(-(h/range)^2)`` — the paper's model."""

    range: float = 10.0
    variance: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(self.range, "range")
        ensure_positive(self.variance, "variance")

    def __call__(self, distances: np.ndarray) -> np.ndarray:
        h = np.asarray(distances, dtype=np.float64)
        return self.variance * np.exp(-((h / self.range) ** 2))

    @property
    def effective_range(self) -> float:
        # exp(-(h/a)^2) = 0.05  =>  h = a * sqrt(ln 20)
        return float(self.range * np.sqrt(np.log(20.0)))


@dataclass(frozen=True)
class ExponentialCovariance(CovarianceModel):
    """``C(h) = variance * exp(-h/range)``."""

    range: float = 10.0
    variance: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(self.range, "range")
        ensure_positive(self.variance, "variance")

    def __call__(self, distances: np.ndarray) -> np.ndarray:
        h = np.asarray(distances, dtype=np.float64)
        return self.variance * np.exp(-h / self.range)

    @property
    def effective_range(self) -> float:
        return float(self.range * np.log(20.0))


@dataclass(frozen=True)
class MaternCovariance(CovarianceModel):
    """Matern covariance with smoothness ``nu`` and scale ``range``."""

    range: float = 10.0
    variance: float = 1.0
    nu: float = 1.5

    def __post_init__(self) -> None:
        ensure_positive(self.range, "range")
        ensure_positive(self.variance, "variance")
        ensure_positive(self.nu, "nu")

    def __call__(self, distances: np.ndarray) -> np.ndarray:
        h = np.asarray(distances, dtype=np.float64)
        scaled = np.sqrt(2.0 * self.nu) * h / self.range
        out = np.empty_like(scaled)
        zero = scaled == 0
        out[zero] = self.variance
        s = scaled[~zero]
        coeff = self.variance * (2.0 ** (1.0 - self.nu)) / gamma_fn(self.nu)
        out[~zero] = coeff * (s**self.nu) * kv(self.nu, s)
        return out

    @property
    def effective_range(self) -> float:
        # Solve numerically for the 5% correlation distance.
        target = 0.05 * self.variance
        lo, hi = 1e-9, self.range * 50.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self(np.array([mid]))[0] > target:
                lo = mid
            else:
                hi = mid
        return float(0.5 * (lo + hi))


@dataclass(frozen=True)
class SphericalCovariance(CovarianceModel):
    """Spherical model: exactly zero covariance beyond ``range``."""

    range: float = 10.0
    variance: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(self.range, "range")
        ensure_positive(self.variance, "variance")

    def __call__(self, distances: np.ndarray) -> np.ndarray:
        h = np.asarray(distances, dtype=np.float64)
        ratio = np.clip(h / self.range, 0.0, 1.0)
        return self.variance * (1.0 - 1.5 * ratio + 0.5 * ratio**3)

    @property
    def effective_range(self) -> float:
        return float(self.range)


class MixtureCovariance(CovarianceModel):
    """Convex combination of component covariances.

    The paper's multi-range Gaussian fields superpose two squared-exponential
    components "contributing equally to the total field"; that corresponds to
    a mixture covariance with equal weights.
    """

    def __init__(
        self,
        components: Sequence[CovarianceModel],
        weights: Sequence[float] | None = None,
    ) -> None:
        if not components:
            raise ValueError("MixtureCovariance requires at least one component")
        self.components = tuple(components)
        if weights is None:
            weights = [1.0 / len(components)] * len(components)
        if len(weights) != len(components):
            raise ValueError("weights and components must have the same length")
        w = np.asarray(weights, dtype=np.float64)
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative and sum to > 0")
        self.weights = tuple((w / w.sum()).tolist())
        self.variance = float(
            sum(wi * comp.variance for wi, comp in zip(self.weights, self.components))
        )

    def __call__(self, distances: np.ndarray) -> np.ndarray:
        h = np.asarray(distances, dtype=np.float64)
        total = np.zeros_like(h, dtype=np.float64)
        for weight, component in zip(self.weights, self.components):
            total += weight * component(h)
        return total

    @property
    def effective_range(self) -> float:
        return float(max(c.effective_range for c in self.components))
