"""repro — reproduction of "Exploring Lossy Compressibility through
Statistical Correlations of Scientific Datasets" (Krasowska et al., SC 2021).

The library is organised as the paper's system is:

* :mod:`repro.datasets` — synthetic 2D Gaussian random fields with
  controllable (single / multi) correlation ranges and a Miranda-like
  hydrodynamics surrogate.
* :mod:`repro.compressors` — from-scratch SZ-like, ZFP-like and MGARD-like
  error-bounded lossy compressors with their lossless coding substrate in
  :mod:`repro.encoding`.
* :mod:`repro.pressio` — a libpressio-like facade (uniform compress /
  decompress / measure interface and quality metrics).
* :mod:`repro.stats` — variogram estimation and fitting, windowed local
  statistics, local SVD truncation levels, entropy.
* :mod:`repro.core` — the analysis layer: experiment sweeps, logarithmic
  regressions CR = alpha + beta*log(statistic), figure drivers and the
  compression-ratio predictor extension.
* :mod:`repro.baselines` — related-work comparators (block-sampling CR
  estimation, entropy-based adaptive SZ/ZFP selection).

Quick start::

    import numpy as np
    from repro.datasets import generate_gaussian_field
    from repro.pressio import compress_and_measure
    from repro.stats import estimate_variogram_range

    field = generate_gaussian_field((128, 128), correlation_range=16.0, seed=0)
    a = estimate_variogram_range(field)
    compressed, metrics = compress_and_measure(field, "sz", error_bound=1e-3)
    print(a, metrics.compression_ratio)
"""

from repro.version import __version__

__all__ = ["__version__"]
